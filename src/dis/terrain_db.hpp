// Terrain database replicated over LBRM (the paper's "distributed cache
// update problem", Section 1).
//
// The authoritative database lives at the simulation host that owns the
// terrain (one LBRM source); every participant holds a replica fed by the
// group's receiver.  An update ("the bridge is destroyed") is one LBRM data
// packet; replicas apply updates idempotently by version and report each
// entity's view skew.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/time.hpp"
#include "dis/entity.hpp"

namespace lbrm::dis {

/// The owner's database: mutates entities, producing wire payloads to
/// multicast via a SenderCore / DisScenario / UdpEndpoint.
class TerrainAuthority {
public:
    /// Create or replace an entity; returns the payload to multicast.
    std::vector<std::uint8_t> set_status(EntityId id, std::string status) {
        TerrainState& entity = entities_[id];
        entity.id = id;
        entity.status = std::move(status);
        ++entity.version;
        return entity.encode();
    }

    [[nodiscard]] const TerrainState* find(EntityId id) const {
        auto it = entities_.find(id);
        return it == entities_.end() ? nullptr : &it->second;
    }

    [[nodiscard]] std::size_t size() const { return entities_.size(); }

private:
    std::map<EntityId, TerrainState> entities_;
};

/// A participant's replica: apply every delivered LBRM payload.
class TerrainReplica {
public:
    /// Observer invoked on every *effective* state change.
    using ChangeHook = std::function<void(const TerrainState&, TimePoint)>;

    void set_change_hook(ChangeHook hook) { hook_ = std::move(hook); }

    /// Apply one delivered payload.  Returns false for undecodable or
    /// stale (version <= current) updates; both are safely ignored --
    /// receiver-reliable delivery is unordered, so stale versions can
    /// legitimately arrive after newer ones (e.g. a late retransmission).
    bool apply(std::span<const std::uint8_t> payload, TimePoint now) {
        auto update = TerrainState::decode(payload);
        if (!update) return false;
        TerrainState& current = entities_[update->id];
        if (current.version >= update->version && current.version != 0) return false;
        current = std::move(*update);
        applied_at_[current.id] = now;
        if (hook_) hook_(current, now);
        return true;
    }

    [[nodiscard]] const TerrainState* find(EntityId id) const {
        auto it = entities_.find(id);
        return it == entities_.end() ? nullptr : &it->second;
    }

    /// When this replica last changed its view of `id`.
    [[nodiscard]] std::optional<TimePoint> applied_at(EntityId id) const {
        auto it = applied_at_.find(id);
        if (it == applied_at_.end()) return std::nullopt;
        return it->second;
    }

    /// True when the replica agrees with the authority on `id`.
    [[nodiscard]] bool agrees_with(const TerrainAuthority& authority, EntityId id) const {
        const TerrainState* mine = find(id);
        const TerrainState* theirs = authority.find(id);
        if (mine == nullptr || theirs == nullptr) return mine == theirs;
        return *mine == *theirs;
    }

    [[nodiscard]] std::size_t size() const { return entities_.size(); }

private:
    std::map<EntityId, TerrainState> entities_;
    std::map<EntityId, TimePoint> applied_at_;
    ChangeHook hook_;
};

}  // namespace lbrm::dis
