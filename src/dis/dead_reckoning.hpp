// Dead reckoning for dynamic entities (Section 1's reference [17],
// Singhal & Cheriton: "Exploiting Position History for Efficient Remote
// Rendering in Networked Virtual Reality").
//
// Every observer extrapolates an entity's last published state forward; the
// *publisher* runs the same extrapolation against ground truth and issues a
// new appearance PDU only when the error exceeds a threshold (or a maximum
// silence elapses).  This is what keeps 100,000 dynamic entities at ~1
// packet/second each instead of a packet per frame -- the backdrop against
// which the paper's terrain-heartbeat arithmetic (Section 2.1.2) is set.
#pragma once

#include "common/time.hpp"
#include "dis/entity.hpp"

namespace lbrm::dis {

enum class DrModel : std::uint8_t {
    kStatic = 0,           ///< position frozen at last update
    kConstantVelocity = 1, ///< p + v*dt
    kConstantAcceleration = 2,  ///< p + v*dt + a*dt^2/2
};

/// Extrapolate `state` to time `now` under the given model.
[[nodiscard]] inline Vec3 extrapolate(const EntityState& state, DrModel model,
                                      TimePoint now) {
    const double dt = to_seconds(now - state.at);
    switch (model) {
        case DrModel::kStatic:
            return state.position;
        case DrModel::kConstantVelocity:
            return state.position + state.velocity * dt;
        case DrModel::kConstantAcceleration:
            return state.position + state.velocity * dt +
                   state.acceleration * (0.5 * dt * dt);
    }
    return state.position;
}

struct DeadReckoningConfig {
    DrModel model = DrModel::kConstantVelocity;
    /// Publish when |true - extrapolated| exceeds this (meters).
    double error_threshold_m = 1.0;
    /// Publish at least this often even if the model tracks perfectly
    /// (DIS's 5-second appearance-PDU keepalive; the paper's observed
    /// average is ~1 packet/s across entity mixes).
    Duration max_silence = secs(5.0);
};

/// Publisher-side decision engine for one dynamic entity.
class DeadReckoner {
public:
    explicit DeadReckoner(DeadReckoningConfig config) : config_(config) {}

    /// Feed ground truth; returns true when an update must be published
    /// (and assumes the caller publishes it: the new state becomes the
    /// reference both sides extrapolate from).
    bool observe(const EntityState& truth) {
        if (!published_) {
            published_ = truth;
            return true;
        }
        const Vec3 predicted = extrapolate(*published_, config_.model, truth.at);
        const bool drifted =
            (truth.position - predicted).norm() > config_.error_threshold_m;
        const bool silent_too_long = truth.at - published_->at >= config_.max_silence;
        if (drifted || silent_too_long) {
            published_ = truth;
            ++updates_;
            return true;
        }
        ++suppressed_;
        return false;
    }

    /// What a remote observer believes right now.
    [[nodiscard]] std::optional<Vec3> remote_view(TimePoint now) const {
        if (!published_) return std::nullopt;
        return extrapolate(*published_, config_.model, now);
    }

    [[nodiscard]] std::uint64_t updates_published() const { return updates_; }
    [[nodiscard]] std::uint64_t updates_suppressed() const { return suppressed_; }
    [[nodiscard]] const DeadReckoningConfig& config() const { return config_; }

private:
    DeadReckoningConfig config_;
    std::optional<EntityState> published_;
    std::uint64_t updates_ = 0;
    std::uint64_t suppressed_ = 0;
};

}  // namespace lbrm::dis
