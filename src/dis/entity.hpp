// Entity model for the Distributed Interactive Simulation substrate.
//
// The paper's Section 1/2.1.2 world: ~100,000 *dynamic* entities (tanks,
// planes, jeeps) whose high-rate state is handled with appearance PDUs plus
// dead reckoning, and ~100,000 *terrain* entities (bridges, buildings,
// trees) that change rarely but need 1/4-second freshness -- the traffic
// LBRM carries.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace lbrm::dis {

using EntityId = detail::StrongId<struct EntityIdTag>;

/// 3-vector in simulation coordinates (meters / meters-per-second).
struct Vec3 {
    double x = 0, y = 0, z = 0;

    friend Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
    friend Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
    friend Vec3 operator*(Vec3 v, double k) { return {v.x * k, v.y * k, v.z * k}; }
    friend bool operator==(Vec3, Vec3) = default;

    [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
};

/// Kinematic state of a dynamic entity at a reference instant.
struct EntityState {
    EntityId id;
    Vec3 position;
    Vec3 velocity;
    Vec3 acceleration;
    TimePoint at{};  ///< instant the state was sampled

    friend bool operator==(const EntityState&, const EntityState&) = default;
};

/// A terrain entity's application state: a small opaque blob plus a
/// human-readable status (the "bridge intact / destroyed" of Section 1).
struct TerrainState {
    EntityId id;
    std::string status;
    std::uint32_t version = 0;

    friend bool operator==(const TerrainState&, const TerrainState&) = default;

    [[nodiscard]] std::vector<std::uint8_t> encode() const {
        ByteWriter w;
        w.u32(id.value());
        w.u32(version);
        w.str16(status);
        return w.take();
    }

    static std::optional<TerrainState> decode(std::span<const std::uint8_t> wire) {
        ByteReader r{wire};
        auto id = r.u32();
        auto version = r.u32();
        auto status = r.str16();
        if (!id || !version || !status) return std::nullopt;
        return TerrainState{EntityId{*id}, std::move(*status), *version};
    }
};

}  // namespace lbrm::dis
