// The Section 2.1.2 battlefield bandwidth model.
//
// "The scenario involves 100,000 dynamic entities (tanks, planes, ships,
// infantry), and an equal number of aggregate terrain entities...  In
// current DIS simulations, dynamic entities generate one packet per second,
// on average... If we estimate that the state changes once every two
// minutes, then the periodic heartbeats account for effectively all of the
// terrain updates and for 4/5 of the simulation's 500,000 packets per
// second."
//
// This header computes the whole-simulation packet budget for any entity
// mix and heartbeat scheme, reproducing those headline numbers and feeding
// the DIS example and bench.
#pragma once

#include <cstddef>

#include "analysis/heartbeat_math.hpp"
#include "core/config.hpp"

namespace lbrm::dis {

struct BattlefieldSpec {
    std::size_t dynamic_entities = 100'000;
    /// Dead-reckoned appearance PDUs per dynamic entity per second.
    double dynamic_pdu_rate = 1.0;
    std::size_t terrain_entities = 100'000;
    /// Seconds between genuine terrain state changes.
    double terrain_update_interval_s = 120.0;
    HeartbeatConfig heartbeat;  ///< paper defaults
};

struct BandwidthBreakdown {
    double dynamic_pps = 0;            ///< appearance PDUs
    double terrain_data_pps = 0;       ///< genuine terrain updates
    double terrain_heartbeat_pps = 0;  ///< keep-alives
    [[nodiscard]] double total() const {
        return dynamic_pps + terrain_data_pps + terrain_heartbeat_pps;
    }
    [[nodiscard]] double heartbeat_fraction() const {
        return total() > 0 ? terrain_heartbeat_pps / total() : 0;
    }
};

/// Packet budget under the fixed-heartbeat scheme (heartbeat every h_min).
[[nodiscard]] inline BandwidthBreakdown fixed_heartbeat_budget(const BattlefieldSpec& spec) {
    BandwidthBreakdown out;
    out.dynamic_pps = static_cast<double>(spec.dynamic_entities) * spec.dynamic_pdu_rate;
    out.terrain_data_pps =
        static_cast<double>(spec.terrain_entities) / spec.terrain_update_interval_s;
    out.terrain_heartbeat_pps =
        analysis::fixed_heartbeat_rate(to_seconds(spec.heartbeat.h_min),
                                       spec.terrain_update_interval_s) *
        static_cast<double>(spec.terrain_entities);
    return out;
}

/// Packet budget under the variable-heartbeat scheme.
[[nodiscard]] inline BandwidthBreakdown variable_heartbeat_budget(
    const BattlefieldSpec& spec) {
    BandwidthBreakdown out = fixed_heartbeat_budget(spec);
    out.terrain_heartbeat_pps =
        analysis::variable_heartbeat_rate(spec.heartbeat,
                                          spec.terrain_update_interval_s) *
        static_cast<double>(spec.terrain_entities);
    return out;
}

}  // namespace lbrm::dis
