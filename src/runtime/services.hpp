// Driver-side service interfaces.
//
// A driver -- the discrete-event simulator or the epoll/UDP reactor --
// implements these two interfaces; ProtocolHost uses them to execute the
// Actions emitted by the sans-IO cores.  Cores themselves never see these
// types.
#pragma once

#include <cstdint>
#include <functional>

#include "core/actions.hpp"
#include "packet/packet.hpp"

namespace lbrm {

/// Transmits packets on behalf of one host.
class NetworkService {
public:
    virtual ~NetworkService() = default;
    virtual void send_unicast(NodeId to, const Packet& packet) = 0;
    virtual void send_multicast(const Packet& packet, McastScope scope) = 0;
    /// Dynamic group membership (Section 7 retransmission channel).
    virtual void join_group(GroupId group) = 0;
    virtual void leave_group(GroupId group) = 0;
};

/// Arms and cancels timers on behalf of one host.  Keys are (core tag,
/// TimerId) pairs so independent cores on one host never collide; arming an
/// armed key replaces its deadline.
class TimerService {
public:
    virtual ~TimerService() = default;
    virtual void arm(std::uint32_t core_tag, TimerId id, TimePoint deadline) = 0;
    virtual void cancel(std::uint32_t core_tag, TimerId id) = 0;
};

/// Application-side hooks for one attached core.
struct AppHandlers {
    /// Data delivery (receiver cores).
    std::function<void(TimePoint, const DeliverData&)> on_data;
    /// Protocol notifications (any core).
    std::function<void(TimePoint, const Notice&)> on_notice;
};

/// Type-erased sans-IO core, for protocols beyond the built-in LBRM trio
/// (the baseline comparators implement this).
class CoreBase {
public:
    virtual ~CoreBase() = default;
    virtual Actions start(TimePoint now) = 0;
    virtual Actions on_packet(TimePoint now, const Packet& packet) = 0;
    virtual Actions on_timer(TimePoint now, TimerId id) = 0;
};

}  // namespace lbrm
