#include "runtime/protocol_host.hpp"

#include <stdexcept>

namespace lbrm {

SenderCore& ProtocolHost::add_sender(SenderConfig config, AppHandlers handlers) {
    sender_ = std::make_unique<SenderSlot>(std::move(config), std::move(handlers));
    if (metrics_ != nullptr) sender_->core.bind_metrics(*metrics_);
    return sender_->core;
}

ReceiverCore& ProtocolHost::add_receiver(ReceiverConfig config, AppHandlers handlers) {
    ReceiverCore& core =
        receivers_.emplace_back(next_tag_++, std::move(config), std::move(handlers))
            .core;
    if (metrics_ != nullptr) core.bind_metrics(*metrics_);
    return core;
}

LoggerCore& ProtocolHost::add_logger(LoggerConfig config, std::uint64_t rng_seed,
                                     AppHandlers handlers) {
    LoggerCore& core =
        loggers_
            .emplace_back(next_tag_++, std::move(config), rng_seed, std::move(handlers))
            .core;
    if (metrics_ != nullptr) core.bind_metrics(*metrics_);
    return core;
}

void ProtocolHost::bind_metrics(obs::Metrics& metrics) {
    metrics_ = &metrics.protocol();
    host_ = &metrics_->host;
    if (sender_) sender_->core.bind_metrics(*metrics_);
    for (auto& slot : receivers_) slot.core.bind_metrics(*metrics_);
    for (auto& slot : loggers_) slot.core.bind_metrics(*metrics_);
}

std::uint64_t ProtocolHost::gap_overflows() const {
    std::uint64_t total = 0;
    for (const auto& slot : receivers_) total += slot.core.detector().gap_overflows();
    for (const auto& slot : loggers_) total += slot.core.detector().gap_overflows();
    return total;
}

std::uint64_t ProtocolHost::zero_volunteer_resolicits() const {
    return sender_ ? sender_->core.stat_ack().empty_epoch_resolicits() : 0;
}

CoreBase& ProtocolHost::add_core(std::unique_ptr<CoreBase> core, AppHandlers handlers) {
    return *generics_.emplace_back(next_tag_++, std::move(core), std::move(handlers))
                .core;
}

void ProtocolHost::add_dormant_receiver(
    std::shared_ptr<const DormantReceiverTemplate> tmpl, NodeId self, NodeId logger,
    NodeId fallback_logger) {
    if (logger == kNoNode)
        throw std::invalid_argument(
            "dormant receivers need a statically configured logger "
            "(discovery sends probes at start)");
    dormant_.push_back(
        DormantReceiver{next_tag_++, self, logger, fallback_logger, true,
                        std::move(tmpl)});
}

ProtocolHost::ReceiverSlot& ProtocolHost::wake_dormant(std::size_t i) {
    DormantReceiver rec = std::move(dormant_[i]);
    dormant_.erase(dormant_.begin() + static_cast<std::ptrdiff_t>(i));
    ReceiverConfig config = rec.tmpl->config;
    config.self = rec.self;
    config.logger = rec.logger;
    config.fallback_logger = rec.fallback;
    AppHandlers handlers =
        rec.tmpl->make_handlers ? rec.tmpl->make_handlers(rec.self) : AppHandlers{};
    ReceiverSlot& slot =
        receivers_.emplace_back(rec.tag, std::move(config), std::move(handlers));
    // The constructor is pure; restore the two flags start() would have set
    // (the idle watchdog it arms is armed at ProtocolHost::start, and fired
    // timers are recorded in rec.fresh).
    slot.core.restore_started(rec.fresh);
    if (defer_dormant_watchdogs_ && started_ && rec.fresh) {
        // Deferred mode never armed this record's idle watchdog, and once
        // the core is live the sweep no longer covers it.  If the wake
        // packet carries stream activity the core's on_packet re-arms kIdle
        // anyway (replacing this); but a wake by a packet the receiver
        // *ignores* (a stat-ack probe, say) would otherwise leave a fresh
        // core with no watchdog at all -- its freshness-lost would silently
        // diverge from an eager core, whose start()-armed timer still
        // fires.  Stale (!fresh) records carry no pending watchdog: the
        // eager equivalent already fired it, with no re-arm.
        timers_.arm(rec.tag, {TimerKind::kIdle, 0},
                    started_at_ + ReceiverCore::initial_idle_threshold(
                                      slot.core.config()));
    }
    if (metrics_ != nullptr) slot.core.bind_metrics(*metrics_);
    ++dormant_wakes_;
    return slot;
}

ReceiverCore* ProtocolHost::receiver_for(NodeId self) {
    for (auto& slot : receivers_)
        if (slot.core.config().self == self) return &slot.core;
    for (std::size_t i = 0; i < dormant_.size(); ++i)
        if (dormant_[i].self == self) return &wake_dormant(i).core;
    return nullptr;
}

std::size_t ProtocolHost::next_dormant_after(std::uint64_t last_tag) const {
    // Tags are handed out in attach order and wake_dormant preserves the
    // order of the remaining records, so dormant_ is always ascending by
    // tag.  The cursor therefore visits each record present at loop entry
    // at most once and naturally skips records erased by a reentrant wake.
    for (std::size_t i = 0; i < dormant_.size(); ++i)
        if (dormant_[i].tag > last_tag) return i;
    return dormant_.size();
}

void ProtocolHost::fire_dormant_watchdogs(TimePoint now) {
    // Tag-cursor loop, not indices or references: execute() routes notices
    // through observer callbacks that may re-enter this host and wake (=
    // erase) another dormant record -- e.g. a chaos hook or a test poking
    // scenario.receiver(node) from on_notice.  An index held across that
    // erase would skip the shifted record; a reference would dangle.
    std::uint64_t last_tag = 0;  // tags start at 1, so 0 = "before the first"
    for (;;) {
        const std::size_t i = next_dormant_after(last_tag);
        if (i >= dormant_.size()) break;
        last_tag = dormant_[i].tag;
        if (!dormant_[i].fresh) continue;
        if (started_at_ +
                ReceiverCore::initial_idle_threshold(dormant_[i].tmpl->config) >
            now)
            continue;
        // Mirror the on_timer kIdle branch for a dormant record: flip
        // freshness, notify, no re-arm (see on_timer below).  Flip before
        // executing so a reentrant sweep never double-fires this record.
        dormant_[i].fresh = false;
        const std::uint32_t tag = dormant_[i].tag;
        const NodeId self = dormant_[i].self;
        const AppHandlers handlers = dormant_[i].tmpl->make_handlers
                                         ? dormant_[i].tmpl->make_handlers(self)
                                         : AppHandlers{};
        Actions actions;
        actions.push_back(Notice{NoticeKind::kFreshnessLost, 0});
        execute(now, tag, handlers, std::move(actions));
    }
}

std::size_t ProtocolHost::core_count() const {
    return (sender_ ? 1u : 0u) + receivers_.size() + loggers_.size() +
           generics_.size() + dormant_.size();
}

void ProtocolHost::start(TimePoint now) {
    if (sender_) execute(now, 0, sender_->handlers, sender_->core.start(now));
    for (auto& slot : receivers_)
        execute(now, slot.tag, slot.handlers, slot.core.start(now));
    started_at_ = now;
    started_ = true;
    if (!defer_dormant_watchdogs_) {
        for (DormantReceiver& rec : dormant_) {
            // Exactly what ReceiverCore::start() returns for a statically
            // configured logger: one idle-watchdog StartTimer.  Handlers are
            // not consulted for StartTimer, so the factory stays uncalled.
            Actions actions;
            actions.push_back(StartTimer{
                {TimerKind::kIdle, 0},
                now + ReceiverCore::initial_idle_threshold(rec.tmpl->config)});
            execute(now, rec.tag, AppHandlers{}, std::move(actions));
        }
    }
    for (auto& slot : loggers_)
        execute(now, slot.tag, slot.handlers, slot.core.start(now));
    for (auto& slot : generics_)
        execute(now, slot.tag, slot.handlers, slot.core->start(now));
}

void ProtocolHost::on_packet(TimePoint now, const Packet& packet) {
    // Every core sees every packet; each filters by group and type.  This
    // mirrors a host process demultiplexing one socket to its protocol
    // entities.
    if (sender_) execute(now, 0, sender_->handlers, sender_->core.on_packet(now, packet));
    for (auto& slot : receivers_)
        execute(now, slot.tag, slot.handlers, slot.core.on_packet(now, packet));
    // Tag-cursor loop (see fire_dormant_watchdogs): the execute() after a
    // wake runs observer callbacks that may re-enter this host and wake
    // another dormant record, shifting dormant_ under a plain index.
    std::uint64_t last_dormant_tag = 0;
    while (!dormant_.empty()) {
        const std::size_t i = next_dormant_after(last_dormant_tag);
        if (i >= dormant_.size()) break;
        last_dormant_tag = dormant_[i].tag;
        // A live idle core mutates nothing on a packet unless its group or
        // retransmission channel matches (ReceiverCore::on_packet's filter)
        // -- so matching packets wake the core, everything else is a no-op.
        const ReceiverConfig& cfg = dormant_[i].tmpl->config;
        const bool wakes = packet.header.group == cfg.group ||
                           (cfg.retrans_channel != kNoGroup &&
                            packet.header.group == cfg.retrans_channel);
        if (!wakes) continue;
        ReceiverSlot& slot = wake_dormant(i);  // erases dormant_[i]
        execute(now, slot.tag, slot.handlers, slot.core.on_packet(now, packet));
    }
    for (auto& slot : loggers_)
        execute(now, slot.tag, slot.handlers, slot.core.on_packet(now, packet));
    for (auto& slot : generics_)
        execute(now, slot.tag, slot.handlers, slot.core->on_packet(now, packet));
}

void ProtocolHost::on_datagram(TimePoint now, std::span<const std::uint8_t> datagram) {
    if (auto packet = decode(datagram)) on_packet(now, *packet);
}

void ProtocolHost::on_timer(TimePoint now, std::uint32_t core_tag, TimerId id) {
    if (core_tag == 0) {
        if (sender_) execute(now, 0, sender_->handlers, sender_->core.on_timer(now, id));
        return;
    }
    for (auto& slot : receivers_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core.on_timer(now, id));
            return;
        }
    }
    for (DormantReceiver& rec : dormant_) {
        if (rec.tag != core_tag) continue;
        // The only timer a dormant receiver owns is the idle watchdog armed
        // at start().  Mirror ReceiverCore::on_timer's kIdle branch: flip
        // freshness, notify, no re-arm.  The core stays dormant -- losing
        // freshness accumulates no other state.
        if (!rec.fresh) return;
        rec.fresh = false;
        Actions actions;
        actions.push_back(Notice{NoticeKind::kFreshnessLost, 0});
        const AppHandlers handlers = rec.tmpl->make_handlers
                                         ? rec.tmpl->make_handlers(rec.self)
                                         : AppHandlers{};
        execute(now, core_tag, handlers, std::move(actions));
        return;
    }
    for (auto& slot : loggers_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core.on_timer(now, id));
            return;
        }
    }
    for (auto& slot : generics_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core->on_timer(now, id));
            return;
        }
    }
}

void ProtocolHost::send(TimePoint now, std::span<const std::uint8_t> payload) {
    if (!sender_) return;
    execute(now, 0, sender_->handlers, sender_->core.send(now, payload));
}

void ProtocolHost::inject(TimePoint now, const CoreBase& core, Actions actions) {
    for (auto& slot : generics_) {
        if (slot.core.get() == &core) {
            execute(now, slot.tag, slot.handlers, std::move(actions));
            return;
        }
    }
}

void ProtocolHost::execute(TimePoint now, std::uint32_t tag, const AppHandlers& handlers,
                           Actions&& actions) {
    for (Action& action : actions) {
        if (auto* send = std::get_if<SendUnicast>(&action)) {
            host_->send_by_type[static_cast<std::size_t>(send->packet.type())]
                ->inc();
            network_.send_unicast(send->to, send->packet);
        } else if (auto* mcast = std::get_if<SendMulticast>(&action)) {
            host_->send_by_type[static_cast<std::size_t>(mcast->packet.type())]
                ->inc();
            network_.send_multicast(mcast->packet, mcast->scope);
        } else if (auto* start = std::get_if<StartTimer>(&action)) {
            host_->timers_armed->inc();
            timers_.arm(tag, start->id, start->deadline);
        } else if (auto* cancel = std::get_if<CancelTimer>(&action)) {
            host_->timers_cancelled->inc();
            timers_.cancel(tag, cancel->id);
        } else if (auto* deliver = std::get_if<DeliverData>(&action)) {
            if (handlers.on_data) handlers.on_data(now, *deliver);
        } else if (auto* notice = std::get_if<Notice>(&action)) {
            host_->notices->inc();
            if (handlers.on_notice) handlers.on_notice(now, *notice);
        } else if (auto* join = std::get_if<JoinGroup>(&action)) {
            network_.join_group(join->group);
        } else if (auto* leave = std::get_if<LeaveGroup>(&action)) {
            network_.leave_group(leave->group);
        }
    }
}

}  // namespace lbrm
