#include "runtime/protocol_host.hpp"

namespace lbrm {

SenderCore& ProtocolHost::add_sender(SenderConfig config, AppHandlers handlers) {
    sender_ = std::make_unique<SenderSlot>(std::move(config), std::move(handlers));
    if (metrics_ != nullptr) sender_->core.bind_metrics(*metrics_);
    return sender_->core;
}

ReceiverCore& ProtocolHost::add_receiver(ReceiverConfig config, AppHandlers handlers) {
    ReceiverCore& core =
        receivers_.emplace_back(next_tag_++, std::move(config), std::move(handlers))
            .core;
    if (metrics_ != nullptr) core.bind_metrics(*metrics_);
    return core;
}

LoggerCore& ProtocolHost::add_logger(LoggerConfig config, std::uint64_t rng_seed,
                                     AppHandlers handlers) {
    LoggerCore& core =
        loggers_
            .emplace_back(next_tag_++, std::move(config), rng_seed, std::move(handlers))
            .core;
    if (metrics_ != nullptr) core.bind_metrics(*metrics_);
    return core;
}

void ProtocolHost::bind_metrics(obs::Metrics& metrics) {
    metrics_ = &metrics.protocol();
    host_ = &metrics_->host;
    if (sender_) sender_->core.bind_metrics(*metrics_);
    for (auto& slot : receivers_) slot.core.bind_metrics(*metrics_);
    for (auto& slot : loggers_) slot.core.bind_metrics(*metrics_);
}

std::uint64_t ProtocolHost::gap_overflows() const {
    std::uint64_t total = 0;
    for (const auto& slot : receivers_) total += slot.core.detector().gap_overflows();
    for (const auto& slot : loggers_) total += slot.core.detector().gap_overflows();
    return total;
}

std::uint64_t ProtocolHost::zero_volunteer_resolicits() const {
    return sender_ ? sender_->core.stat_ack().empty_epoch_resolicits() : 0;
}

CoreBase& ProtocolHost::add_core(std::unique_ptr<CoreBase> core, AppHandlers handlers) {
    return *generics_.emplace_back(next_tag_++, std::move(core), std::move(handlers))
                .core;
}

std::size_t ProtocolHost::core_count() const {
    return (sender_ ? 1u : 0u) + receivers_.size() + loggers_.size() + generics_.size();
}

void ProtocolHost::start(TimePoint now) {
    if (sender_) execute(now, 0, sender_->handlers, sender_->core.start(now));
    for (auto& slot : receivers_)
        execute(now, slot.tag, slot.handlers, slot.core.start(now));
    for (auto& slot : loggers_)
        execute(now, slot.tag, slot.handlers, slot.core.start(now));
    for (auto& slot : generics_)
        execute(now, slot.tag, slot.handlers, slot.core->start(now));
}

void ProtocolHost::on_packet(TimePoint now, const Packet& packet) {
    // Every core sees every packet; each filters by group and type.  This
    // mirrors a host process demultiplexing one socket to its protocol
    // entities.
    if (sender_) execute(now, 0, sender_->handlers, sender_->core.on_packet(now, packet));
    for (auto& slot : receivers_)
        execute(now, slot.tag, slot.handlers, slot.core.on_packet(now, packet));
    for (auto& slot : loggers_)
        execute(now, slot.tag, slot.handlers, slot.core.on_packet(now, packet));
    for (auto& slot : generics_)
        execute(now, slot.tag, slot.handlers, slot.core->on_packet(now, packet));
}

void ProtocolHost::on_datagram(TimePoint now, std::span<const std::uint8_t> datagram) {
    if (auto packet = decode(datagram)) on_packet(now, *packet);
}

void ProtocolHost::on_timer(TimePoint now, std::uint32_t core_tag, TimerId id) {
    if (core_tag == 0) {
        if (sender_) execute(now, 0, sender_->handlers, sender_->core.on_timer(now, id));
        return;
    }
    for (auto& slot : receivers_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core.on_timer(now, id));
            return;
        }
    }
    for (auto& slot : loggers_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core.on_timer(now, id));
            return;
        }
    }
    for (auto& slot : generics_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core->on_timer(now, id));
            return;
        }
    }
}

void ProtocolHost::send(TimePoint now, std::span<const std::uint8_t> payload) {
    if (!sender_) return;
    execute(now, 0, sender_->handlers, sender_->core.send(now, payload));
}

void ProtocolHost::inject(TimePoint now, const CoreBase& core, Actions actions) {
    for (auto& slot : generics_) {
        if (slot.core.get() == &core) {
            execute(now, slot.tag, slot.handlers, std::move(actions));
            return;
        }
    }
}

void ProtocolHost::execute(TimePoint now, std::uint32_t tag, const AppHandlers& handlers,
                           Actions&& actions) {
    for (Action& action : actions) {
        if (auto* send = std::get_if<SendUnicast>(&action)) {
            host_->send_by_type[static_cast<std::size_t>(send->packet.type())]
                ->inc();
            network_.send_unicast(send->to, send->packet);
        } else if (auto* mcast = std::get_if<SendMulticast>(&action)) {
            host_->send_by_type[static_cast<std::size_t>(mcast->packet.type())]
                ->inc();
            network_.send_multicast(mcast->packet, mcast->scope);
        } else if (auto* start = std::get_if<StartTimer>(&action)) {
            host_->timers_armed->inc();
            timers_.arm(tag, start->id, start->deadline);
        } else if (auto* cancel = std::get_if<CancelTimer>(&action)) {
            host_->timers_cancelled->inc();
            timers_.cancel(tag, cancel->id);
        } else if (auto* deliver = std::get_if<DeliverData>(&action)) {
            if (handlers.on_data) handlers.on_data(now, *deliver);
        } else if (auto* notice = std::get_if<Notice>(&action)) {
            host_->notices->inc();
            if (handlers.on_notice) handlers.on_notice(now, *notice);
        } else if (auto* join = std::get_if<JoinGroup>(&action)) {
            network_.join_group(join->group);
        } else if (auto* leave = std::get_if<LeaveGroup>(&action)) {
            network_.leave_group(leave->group);
        }
    }
}

}  // namespace lbrm
