#include "runtime/protocol_host.hpp"

namespace lbrm {

SenderCore& ProtocolHost::add_sender(SenderConfig config, AppHandlers handlers) {
    sender_ = std::make_unique<SenderSlot>(std::move(config), std::move(handlers));
    return sender_->core;
}

ReceiverCore& ProtocolHost::add_receiver(ReceiverConfig config, AppHandlers handlers) {
    return receivers_
        .emplace_back(next_tag_++, std::move(config), std::move(handlers))
        .core;
}

LoggerCore& ProtocolHost::add_logger(LoggerConfig config, std::uint64_t rng_seed,
                                     AppHandlers handlers) {
    return loggers_
        .emplace_back(next_tag_++, std::move(config), rng_seed, std::move(handlers))
        .core;
}

CoreBase& ProtocolHost::add_core(std::unique_ptr<CoreBase> core, AppHandlers handlers) {
    return *generics_.emplace_back(next_tag_++, std::move(core), std::move(handlers))
                .core;
}

std::size_t ProtocolHost::core_count() const {
    return (sender_ ? 1u : 0u) + receivers_.size() + loggers_.size() + generics_.size();
}

void ProtocolHost::start(TimePoint now) {
    if (sender_) execute(now, 0, sender_->handlers, sender_->core.start(now));
    for (auto& slot : receivers_)
        execute(now, slot.tag, slot.handlers, slot.core.start(now));
    for (auto& slot : loggers_)
        execute(now, slot.tag, slot.handlers, slot.core.start(now));
    for (auto& slot : generics_)
        execute(now, slot.tag, slot.handlers, slot.core->start(now));
}

void ProtocolHost::on_packet(TimePoint now, const Packet& packet) {
    // Every core sees every packet; each filters by group and type.  This
    // mirrors a host process demultiplexing one socket to its protocol
    // entities.
    if (sender_) execute(now, 0, sender_->handlers, sender_->core.on_packet(now, packet));
    for (auto& slot : receivers_)
        execute(now, slot.tag, slot.handlers, slot.core.on_packet(now, packet));
    for (auto& slot : loggers_)
        execute(now, slot.tag, slot.handlers, slot.core.on_packet(now, packet));
    for (auto& slot : generics_)
        execute(now, slot.tag, slot.handlers, slot.core->on_packet(now, packet));
}

void ProtocolHost::on_datagram(TimePoint now, std::span<const std::uint8_t> datagram) {
    if (auto packet = decode(datagram)) on_packet(now, *packet);
}

void ProtocolHost::on_timer(TimePoint now, std::uint32_t core_tag, TimerId id) {
    if (core_tag == 0) {
        if (sender_) execute(now, 0, sender_->handlers, sender_->core.on_timer(now, id));
        return;
    }
    for (auto& slot : receivers_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core.on_timer(now, id));
            return;
        }
    }
    for (auto& slot : loggers_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core.on_timer(now, id));
            return;
        }
    }
    for (auto& slot : generics_) {
        if (slot.tag == core_tag) {
            execute(now, slot.tag, slot.handlers, slot.core->on_timer(now, id));
            return;
        }
    }
}

void ProtocolHost::send(TimePoint now, std::span<const std::uint8_t> payload) {
    if (!sender_) return;
    execute(now, 0, sender_->handlers, sender_->core.send(now, payload));
}

void ProtocolHost::inject(TimePoint now, const CoreBase& core, Actions actions) {
    for (auto& slot : generics_) {
        if (slot.core.get() == &core) {
            execute(now, slot.tag, slot.handlers, std::move(actions));
            return;
        }
    }
}

void ProtocolHost::execute(TimePoint now, std::uint32_t tag, const AppHandlers& handlers,
                           Actions&& actions) {
    for (Action& action : actions) {
        if (auto* send = std::get_if<SendUnicast>(&action)) {
            network_.send_unicast(send->to, send->packet);
        } else if (auto* mcast = std::get_if<SendMulticast>(&action)) {
            network_.send_multicast(mcast->packet, mcast->scope);
        } else if (auto* start = std::get_if<StartTimer>(&action)) {
            timers_.arm(tag, start->id, start->deadline);
        } else if (auto* cancel = std::get_if<CancelTimer>(&action)) {
            timers_.cancel(tag, cancel->id);
        } else if (auto* deliver = std::get_if<DeliverData>(&action)) {
            if (handlers.on_data) handlers.on_data(now, *deliver);
        } else if (auto* notice = std::get_if<Notice>(&action)) {
            if (handlers.on_notice) handlers.on_notice(now, *notice);
        } else if (auto* join = std::get_if<JoinGroup>(&action)) {
            network_.join_group(join->group);
        } else if (auto* leave = std::get_if<LeaveGroup>(&action)) {
            network_.leave_group(leave->group);
        }
    }
}

}  // namespace lbrm
