// ProtocolHost: glues sans-IO cores to a driver.
//
// One ProtocolHost represents one network endpoint (one NodeId).  It owns
// any mix of cores -- a sender, receivers, and logging servers for several
// groups (the paper's recursion: "a single logging process may serve as the
// primary logger for one group and as the secondary logger for another") --
// routes incoming packets to all of them, executes the Actions they return
// through the driver's NetworkService/TimerService, and forwards
// DeliverData/Notice actions to application handlers.
//
// Core slots live by value in chunked stable arenas (see
// common/stable_vector.hpp): attaching a receiver costs amortised-zero
// allocations instead of one heap node per core, which matters when a
// million-node scenario attaches a million receiver slots (DESIGN.md
// "Scale engineering").  The attach methods still hand out references that
// stay valid for the host's lifetime.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/stable_vector.hpp"
#include "core/logger.hpp"
#include "core/receiver.hpp"
#include "core/sender.hpp"
#include "obs/metrics.hpp"
#include "runtime/services.hpp"

namespace lbrm {

class ProtocolHost {
public:
    ProtocolHost(NetworkService& network, TimerService& timers)
        : network_(network), timers_(timers) {}

    ProtocolHost(const ProtocolHost&) = delete;
    ProtocolHost& operator=(const ProtocolHost&) = delete;

    /// Attach cores.  References remain valid for the host's lifetime.
    SenderCore& add_sender(SenderConfig config, AppHandlers handlers = {});
    ReceiverCore& add_receiver(ReceiverConfig config, AppHandlers handlers = {});
    LoggerCore& add_logger(LoggerConfig config, std::uint64_t rng_seed,
                           AppHandlers handlers = {});
    /// Attach an arbitrary sans-IO core (baseline protocols).
    CoreBase& add_core(std::unique_ptr<CoreBase> core, AppHandlers handlers = {});

    /// Shared blueprint for dormant receivers: the identity-independent
    /// config (self/logger/fallback_logger are overridden per record) plus
    /// a handler factory invoked only when a core actually wakes.  One
    /// template is shared by every dormant receiver in a scenario.
    struct DormantReceiverTemplate {
        ReceiverConfig config;
        std::function<AppHandlers(NodeId self)> make_handlers;
    };

    /// Attach a *dormant* receiver: a ~48-byte record instead of a full
    /// ReceiverCore slot (DESIGN.md "Memory engineering").  Bit-identical
    /// to add_receiver() on an idle group member because ReceiverCore's
    /// constructor is pure, start() with a static logger only arms the
    /// idle watchdog (replicated here via initial_idle_threshold), and
    /// on_packet() mutates nothing unless the packet's group matches the
    /// receiver's group or retransmission channel -- exactly the wake
    /// predicate.  Requires a statically configured logger (discovery
    /// would send probes at start); throws std::invalid_argument on
    /// logger == kNoNode.  Dormant records process after live receivers
    /// and before loggers on every host entry point.
    void add_dormant_receiver(std::shared_ptr<const DormantReceiverTemplate> tmpl,
                              NodeId self, NodeId logger,
                              NodeId fallback_logger = kNoNode);

    /// Opt out of arming one idle-watchdog timer per dormant record at
    /// start().  At 10^7 dormant receivers those timers dominate RSS (a
    /// slab closure plus a per-host timer-table allocation each); a
    /// scenario whose dormant receivers share one deadline replaces them
    /// with a single scheduled sweep that calls fire_dormant_watchdogs()
    /// on every host.  The caller owns the obligation: without a sweep at
    /// (or after) each record's deadline, freshness-lost notices for
    /// never-woken receivers are simply lost.
    void defer_dormant_watchdogs() { defer_dormant_watchdogs_ = true; }

    /// Deferred-watchdog sweep: fire the freshness-lost notice for every
    /// still-dormant record whose idle deadline (start time + the
    /// template's initial_idle_threshold) has passed.  Mirrors the
    /// per-record on_timer kIdle branch, in dormant-record order, so a
    /// sweep at the shared deadline is trace-identical to the per-record
    /// timers it replaces.  No-op for woken (erased) or stale records.
    void fire_dormant_watchdogs(TimePoint now);

    /// Receivers still dormant on this host (tests / introspection).
    [[nodiscard]] std::size_t dormant_count() const { return dormant_.size(); }
    /// Live receiver cores woken from dormancy so far (tests).
    [[nodiscard]] std::uint64_t dormant_wakes() const { return dormant_wakes_; }

    /// The live receiver core with the given self id, materialising it
    /// from dormancy if needed (a pure wake: no actions run, so the
    /// simulation is unaffected).  Null when this host has no such
    /// receiver.
    [[nodiscard]] ReceiverCore* receiver_for(NodeId self);

    /// Start every attached core (arms initial timers, begins probing...).
    void start(TimePoint now);

    /// Driver entry: a decoded packet arrived addressed to (or multicast
    /// reaching) this host.
    void on_packet(TimePoint now, const Packet& packet);

    /// Driver entry: raw datagram; silently drops undecodable input.
    void on_datagram(TimePoint now, std::span<const std::uint8_t> datagram);

    /// Driver entry: the timer (core_tag, id) fired.
    void on_timer(TimePoint now, std::uint32_t core_tag, TimerId id);

    /// Application entry: multicast a payload through the sender core.
    void send(TimePoint now, std::span<const std::uint8_t> payload);

    /// Application entry for generic cores: execute `actions` produced by a
    /// direct call on an attached core (e.g. a baseline sender's send()),
    /// so its sends/timers/notifications run through the host services.
    void inject(TimePoint now, const CoreBase& core, Actions actions);

    [[nodiscard]] SenderCore* sender() { return sender_ ? &sender_->core : nullptr; }
    [[nodiscard]] std::size_t core_count() const;

    /// Bind a metrics registry: resolves the shared protocol handle block
    /// plus host-level send/timer counters, and binds every core attached so
    /// far.  Cores attached later are bound at attach time.  Idempotent.
    void bind_metrics(obs::Metrics& metrics);

    // --- aggregated protocol health ------------------------------------
    /// Gap-table clamp events summed across every attached receiver *and*
    /// secondary-logger loss detector (LossDetector::gap_overflows).
    [[nodiscard]] std::uint64_t gap_overflows() const;
    /// Zero-volunteer acker epochs the sender's statistical-ACK engine had
    /// to re-solicit (StatAckEngine::empty_epoch_resolicits).
    [[nodiscard]] std::uint64_t zero_volunteer_resolicits() const;

private:
    // Tagged slots: tag 0 = sender; receivers and loggers get tags 1..N in
    // attach order.
    struct SenderSlot {
        SenderCore core;
        AppHandlers handlers;
        explicit SenderSlot(SenderConfig c, AppHandlers h)
            : core(std::move(c)), handlers(std::move(h)) {}
    };
    struct ReceiverSlot {
        std::uint32_t tag;
        ReceiverCore core;
        AppHandlers handlers;
        ReceiverSlot(std::uint32_t t, ReceiverConfig c, AppHandlers h)
            : tag(t), core(std::move(c)), handlers(std::move(h)) {}
    };
    struct LoggerSlot {
        std::uint32_t tag;
        LoggerCore core;
        AppHandlers handlers;
        LoggerSlot(std::uint32_t t, LoggerConfig c, std::uint64_t seed, AppHandlers h)
            : tag(t), core(std::move(c), seed), handlers(std::move(h)) {}
    };
    struct GenericSlot {
        std::uint32_t tag;
        std::unique_ptr<CoreBase> core;
        AppHandlers handlers;
        GenericSlot(std::uint32_t t, std::unique_ptr<CoreBase> c, AppHandlers h)
            : tag(t), core(std::move(c)), handlers(std::move(h)) {}
    };

    /// Dormant receiver: identity + freshness is all the state an idle,
    /// statically-configured group member accumulates (see
    /// add_dormant_receiver).  48 bytes vs ~1.3 kB for a ReceiverSlot.
    struct DormantReceiver {
        std::uint32_t tag;
        NodeId self;
        NodeId logger;
        NodeId fallback;
        bool fresh = true;
        std::shared_ptr<const DormantReceiverTemplate> tmpl;
    };

    void execute(TimePoint now, std::uint32_t tag, const AppHandlers& handlers,
                 Actions&& actions);

    /// Materialise dormant_[i] into receivers_ (erases the record,
    /// preserving the order of the remaining ones).  Runs no actions.
    ReceiverSlot& wake_dormant(std::size_t i);

    /// Index of the first dormant record with tag > last_tag, or
    /// dormant_.size().  dormant_ is ascending by tag (attach order;
    /// wake_dormant preserves the remaining order), so this implements the
    /// reentrancy-safe cursor used by on_packet and
    /// fire_dormant_watchdogs.
    [[nodiscard]] std::size_t next_dormant_after(std::uint64_t last_tag) const;

    NetworkService& network_;
    TimerService& timers_;
    const obs::ProtocolMetrics* metrics_ = nullptr;  ///< null until bound
    const obs::HostMetrics* host_ = &obs::HostMetrics::disabled();

    /// Behind a pointer on purpose: at most one host in a whole scenario
    /// carries a sender, so inlining the slot would cost sizeof(SenderCore)
    /// in every one of a million senderless hosts.
    std::unique_ptr<SenderSlot> sender_;
    StableVector<ReceiverSlot> receivers_;
    StableVector<LoggerSlot> loggers_;
    StableVector<GenericSlot> generics_;
    std::vector<DormantReceiver> dormant_;
    std::uint64_t dormant_wakes_ = 0;
    std::uint32_t next_tag_ = 1;
    bool defer_dormant_watchdogs_ = false;
    TimePoint started_at_{};  ///< set by start(); anchors deferred sweeps
    bool started_ = false;    ///< start() ran (pre-start wakes skip the
                              ///< watchdog arm: start() handles it)
};

}  // namespace lbrm
