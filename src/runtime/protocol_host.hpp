// ProtocolHost: glues sans-IO cores to a driver.
//
// One ProtocolHost represents one network endpoint (one NodeId).  It owns
// any mix of cores -- a sender, receivers, and logging servers for several
// groups (the paper's recursion: "a single logging process may serve as the
// primary logger for one group and as the secondary logger for another") --
// routes incoming packets to all of them, executes the Actions they return
// through the driver's NetworkService/TimerService, and forwards
// DeliverData/Notice actions to application handlers.
//
// Core slots live by value in chunked stable arenas (see
// common/stable_vector.hpp): attaching a receiver costs amortised-zero
// allocations instead of one heap node per core, which matters when a
// million-node scenario attaches a million receiver slots (DESIGN.md
// "Scale engineering").  The attach methods still hand out references that
// stay valid for the host's lifetime.
#pragma once

#include <memory>
#include <span>

#include "common/stable_vector.hpp"
#include "core/logger.hpp"
#include "core/receiver.hpp"
#include "core/sender.hpp"
#include "obs/metrics.hpp"
#include "runtime/services.hpp"

namespace lbrm {

class ProtocolHost {
public:
    ProtocolHost(NetworkService& network, TimerService& timers)
        : network_(network), timers_(timers) {}

    ProtocolHost(const ProtocolHost&) = delete;
    ProtocolHost& operator=(const ProtocolHost&) = delete;

    /// Attach cores.  References remain valid for the host's lifetime.
    SenderCore& add_sender(SenderConfig config, AppHandlers handlers = {});
    ReceiverCore& add_receiver(ReceiverConfig config, AppHandlers handlers = {});
    LoggerCore& add_logger(LoggerConfig config, std::uint64_t rng_seed,
                           AppHandlers handlers = {});
    /// Attach an arbitrary sans-IO core (baseline protocols).
    CoreBase& add_core(std::unique_ptr<CoreBase> core, AppHandlers handlers = {});

    /// Start every attached core (arms initial timers, begins probing...).
    void start(TimePoint now);

    /// Driver entry: a decoded packet arrived addressed to (or multicast
    /// reaching) this host.
    void on_packet(TimePoint now, const Packet& packet);

    /// Driver entry: raw datagram; silently drops undecodable input.
    void on_datagram(TimePoint now, std::span<const std::uint8_t> datagram);

    /// Driver entry: the timer (core_tag, id) fired.
    void on_timer(TimePoint now, std::uint32_t core_tag, TimerId id);

    /// Application entry: multicast a payload through the sender core.
    void send(TimePoint now, std::span<const std::uint8_t> payload);

    /// Application entry for generic cores: execute `actions` produced by a
    /// direct call on an attached core (e.g. a baseline sender's send()),
    /// so its sends/timers/notifications run through the host services.
    void inject(TimePoint now, const CoreBase& core, Actions actions);

    [[nodiscard]] SenderCore* sender() { return sender_ ? &sender_->core : nullptr; }
    [[nodiscard]] std::size_t core_count() const;

    /// Bind a metrics registry: resolves the shared protocol handle block
    /// plus host-level send/timer counters, and binds every core attached so
    /// far.  Cores attached later are bound at attach time.  Idempotent.
    void bind_metrics(obs::Metrics& metrics);

    // --- aggregated protocol health ------------------------------------
    /// Gap-table clamp events summed across every attached receiver *and*
    /// secondary-logger loss detector (LossDetector::gap_overflows).
    [[nodiscard]] std::uint64_t gap_overflows() const;
    /// Zero-volunteer acker epochs the sender's statistical-ACK engine had
    /// to re-solicit (StatAckEngine::empty_epoch_resolicits).
    [[nodiscard]] std::uint64_t zero_volunteer_resolicits() const;

private:
    // Tagged slots: tag 0 = sender; receivers and loggers get tags 1..N in
    // attach order.
    struct SenderSlot {
        SenderCore core;
        AppHandlers handlers;
        explicit SenderSlot(SenderConfig c, AppHandlers h)
            : core(std::move(c)), handlers(std::move(h)) {}
    };
    struct ReceiverSlot {
        std::uint32_t tag;
        ReceiverCore core;
        AppHandlers handlers;
        ReceiverSlot(std::uint32_t t, ReceiverConfig c, AppHandlers h)
            : tag(t), core(std::move(c)), handlers(std::move(h)) {}
    };
    struct LoggerSlot {
        std::uint32_t tag;
        LoggerCore core;
        AppHandlers handlers;
        LoggerSlot(std::uint32_t t, LoggerConfig c, std::uint64_t seed, AppHandlers h)
            : tag(t), core(std::move(c), seed), handlers(std::move(h)) {}
    };
    struct GenericSlot {
        std::uint32_t tag;
        std::unique_ptr<CoreBase> core;
        AppHandlers handlers;
        GenericSlot(std::uint32_t t, std::unique_ptr<CoreBase> c, AppHandlers h)
            : tag(t), core(std::move(c)), handlers(std::move(h)) {}
    };

    void execute(TimePoint now, std::uint32_t tag, const AppHandlers& handlers,
                 Actions&& actions);

    NetworkService& network_;
    TimerService& timers_;
    const obs::ProtocolMetrics* metrics_ = nullptr;  ///< null until bound
    const obs::HostMetrics* host_ = &obs::HostMetrics::disabled();

    /// Behind a pointer on purpose: at most one host in a whole scenario
    /// carries a sender, so inlining the slot would cost sizeof(SenderCore)
    /// in every one of a million senderless hosts.
    std::unique_ptr<SenderSlot> sender_;
    StableVector<ReceiverSlot> receivers_;
    StableVector<LoggerSlot> loggers_;
    StableVector<GenericSlot> generics_;
    std::uint32_t next_tag_ = 1;
};

}  // namespace lbrm
