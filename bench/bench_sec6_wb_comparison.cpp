// Section 6: LBRM vs wb-style (SRM) recovery.
//
// Two experiments on the same Figure-1 topology:
//
//  1. Recovery time.  "In wb ... the last receiver to lose a packet
//     recovers in approximately 3 x RTT", because requests wait ~[1,2] x RTT
//     to suppress duplicates and repairs wait again before being multicast.
//     LBRM recovers in the RTT to the nearest logger holding the packet.
//     Measured here from loss *detection* to recovered delivery (both
//     protocols detect via the same session/heartbeat machinery).
//
//  2. The crying baby.  One receiver sits behind a persistently lossy LAN
//     drop.  In wb every loss triggers a group-wide multicast request and
//     repair; in LBRM recovery stays inside the victim's site.  We count
//     repair traffic (NACK + retransmission packets) landing on an
//     *unrelated healthy site's* links.
#include "bench/bench_util.hpp"
#include "bench/srm_harness.hpp"
#include "common/stats.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

DisTopologySpec small_topology() {
    DisTopologySpec spec;
    spec.sites = 5;
    spec.receivers_per_site = 4;
    return spec;
}

/// Repair traffic (NACK + RETRANS) observed on a site's receiver LANs.
std::uint64_t site_repair_traffic(Network& net, const DisTopology::Site& site) {
    std::uint64_t total = 0;
    for (NodeId r : site.receivers) {
        const auto& stats = net.link(site.router, r)->stats();
        total += stats.packets_of(PacketType::kNack) +
                 stats.packets_of(PacketType::kRetransmission);
    }
    return total;
}

// --- experiment 1: recovery latency (detection -> delivery) -----------------

struct Latency {
    double mean_ms = 0;
    double max_ms = 0;
};

Latency lbrm_recovery_latency() {
    SampleSet samples;
    for (int trial = 0; trial < 8; ++trial) {
        ScenarioConfig config;
        config.topology = small_topology();
        config.stat_ack.enabled = false;
        config.seed = 40 + static_cast<std::uint64_t>(trial);
        DisScenario scenario(config);
        auto& network = scenario.network();
        const auto& topo = scenario.topology();
        scenario.start();
        scenario.send_update(std::size_t{128});
        scenario.run_for(secs(2.0));

        // Whole-site loss at site 0 (tail circuit drop).
        network.set_loss(topo.backbone, topo.sites[0].router,
                         std::make_unique<BernoulliLoss>(1.0));
        scenario.send_update(std::size_t{128});
        const SeqNum seq = scenario.sender().last_seq();
        scenario.run_for(millis(50));
        network.set_loss(topo.backbone, topo.sites[0].router,
                         std::make_unique<BernoulliLoss>(0.0));
        scenario.run_for(secs(8.0));

        for (NodeId r : topo.sites[0].receivers) {
            std::optional<TimePoint> detected, delivered;
            for (const auto& n : scenario.notices())
                if (n.node == r && n.kind == NoticeKind::kLossDetected &&
                    n.arg == seq.value() && !detected)
                    detected = n.at;
            for (const auto& d : scenario.deliveries())
                if (d.node == r && d.seq == seq) delivered = d.at;
            if (detected && delivered)
                samples.add(to_seconds(*delivered - *detected) * 1000.0);
        }
    }
    return {samples.mean(), samples.max()};
}

Latency wb_recovery_latency() {
    SampleSet samples;
    for (int trial = 0; trial < 8; ++trial) {
        Simulator simulator;
        Network net{simulator, 70 + static_cast<std::uint64_t>(trial)};
        DisTopologySpec spec = small_topology();
        spec.secondary_logger_per_site = false;
        spec.replicas = 0;
        const DisTopology topo = make_dis_topology(net, spec);
        net.finalize();
        // RTT receiver<->source ~80 ms on this topology.
        auto deployment = make_srm_deployment(net, topo, millis(80), secs(0.25),
                                              900 + static_cast<std::uint64_t>(trial));

        deployment->send(simulator, std::vector<std::uint8_t>(128, 1));
        simulator.run_for(secs(2.0));

        net.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
        deployment->send(simulator, std::vector<std::uint8_t>(128, 2));
        simulator.run_for(millis(50));
        net.set_loss(topo.backbone, topo.sites[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
        simulator.run_for(secs(15.0));

        for (NodeId r : topo.sites[0].receivers) {
            std::optional<TimePoint> detected, delivered;
            for (const auto& l : deployment->losses)
                if (l.node == r && l.seq == SeqNum{2} && !detected) detected = l.at;
            for (const auto& d : deployment->deliveries)
                if (d.node == r && d.seq == SeqNum{2}) delivered = d.at;
            if (detected && delivered)
                samples.add(to_seconds(*delivered - *detected) * 1000.0);
        }
    }
    return {samples.mean(), samples.max()};
}

// --- experiment 2: crying baby ------------------------------------------------

struct CryingBaby {
    std::uint64_t healthy_site_repair_packets = 0;
    std::uint64_t victim_recovered = 0;
};

CryingBaby lbrm_crying_baby() {
    ScenarioConfig config;
    config.topology = small_topology();
    config.stat_ack.enabled = false;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(millis(100));

    // Receiver 0 of site 0 sits behind a 40%-lossy LAN drop, permanently.
    const NodeId victim = topo.sites[0].receivers[0];
    network.set_loss(topo.sites[0].router, victim, std::make_unique<BernoulliLoss>(0.4));
    network.reset_link_stats();

    for (int i = 0; i < 50; ++i) {
        scenario.send_update(std::size_t{128});
        scenario.run_for(millis(400));
    }
    scenario.run_for(secs(5.0));

    CryingBaby result;
    result.healthy_site_repair_packets = site_repair_traffic(network, topo.sites[3]);
    for (const auto& d : scenario.deliveries())
        if (d.node == victim && d.recovered) ++result.victim_recovered;
    return result;
}

CryingBaby wb_crying_baby() {
    Simulator simulator;
    Network net{simulator, 7};
    DisTopologySpec spec = small_topology();
    spec.secondary_logger_per_site = false;
    spec.replicas = 0;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();
    auto deployment = make_srm_deployment(net, topo, millis(80));

    const NodeId victim = topo.sites[0].receivers[0];
    net.set_loss(topo.sites[0].router, victim, std::make_unique<BernoulliLoss>(0.4));
    net.reset_link_stats();

    for (int i = 0; i < 50; ++i) {
        deployment->send(simulator, std::vector<std::uint8_t>(128, 1));
        simulator.run_for(millis(400));
    }
    simulator.run_for(secs(5.0));

    CryingBaby result;
    result.healthy_site_repair_packets = site_repair_traffic(net, topo.sites[3]);
    for (const auto& d : deployment->deliveries)
        if (d.node == victim && d.recovered) ++result.victim_recovered;
    return result;
}

}  // namespace

int main() {
    title("Section 6: LBRM vs wb-style (SRM) recovery");

    note("--- recovery latency after loss detection (whole-site loss) ---");
    {
        const Latency lbrm = lbrm_recovery_latency();
        const Latency wb = wb_recovery_latency();
        Table table({"protocol", "mean (ms)", "max (ms)"});
        table.row({"LBRM", fmt(lbrm.mean_ms, 1), fmt(lbrm.max_ms, 1)});
        table.row({"wb/SRM", fmt(wb.mean_ms, 1), fmt(wb.max_ms, 1)});
        note("");
        note("Expected shape (paper): LBRM ~= RTT to the nearest logger with");
        note("the packet (here the primary, ~80 ms, since the whole site lost");
        note("it); wb ~= 3 x RTT to the source (~240 ms) because requests and");
        note("repairs both wait randomized suppression delays.");
    }

    note("");
    note("--- crying baby: one receiver behind a 40% lossy LAN drop ---");
    {
        const CryingBaby lbrm = lbrm_crying_baby();
        const CryingBaby wb = wb_crying_baby();
        Table table({"protocol", "foreign pkts", "recoveries"});
        table.row({"LBRM", fmt_int(lbrm.healthy_site_repair_packets),
                   fmt_int(lbrm.victim_recovered)});
        table.row({"wb/SRM", fmt_int(wb.healthy_site_repair_packets),
                   fmt_int(wb.victim_recovered)});
        note("");
        note("'foreign pkts' = NACK/repair packets delivered onto a healthy");
        note("remote site's LANs.  Expected shape (paper): zero for LBRM --");
        note("requests go point-to-point to the victim's site logger -- vs");
        note("group-wide multicasts for every loss under wb.");
    }
    return 0;
}
