// Small formatting helpers shared by the reproduction benches.  Each bench
// binary prints the paper artifact it regenerates (figure series or table
// rows) in a fixed-width layout plus a machine-readable CSV block.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lbrm::bench {

inline void title(const std::string& text) {
    std::printf("\n=== %s ===\n\n", text.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Fixed-width table writer: columns sized by the header labels.
class Table {
public:
    explicit Table(std::vector<std::string> headers, int width = 14)
        : headers_(std::move(headers)), width_(width) {
        for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < headers_.size(); ++i)
            std::printf("%*s", width_, std::string(static_cast<std::size_t>(width_) - 2, '-').c_str());
        std::printf("\n");
    }

    void row(const std::vector<std::string>& cells) {
        for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
        std::printf("\n");
    }

private:
    std::vector<std::string> headers_;
    int width_;
};

inline std::string fmt(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt_int(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace lbrm::bench
