// Small formatting helpers shared by the reproduction benches.  Each bench
// binary prints the paper artifact it regenerates (figure series or table
// rows) in a fixed-width layout plus a machine-readable CSV block.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace lbrm::bench {

/// Peak resident set size of this process so far, in bytes (0 when the
/// platform offers no getrusage).  ru_maxrss is kilobytes on Linux and
/// bytes on macOS.
inline std::size_t peak_rss_bytes() {
#if defined(__APPLE__)
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
    return static_cast<std::size_t>(usage.ru_maxrss);
#elif defined(__unix__)
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#else
    return 0;
#endif
}

inline void title(const std::string& text) {
    std::printf("\n=== %s ===\n\n", text.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Fixed-width table writer: columns sized by the header labels.
class Table {
public:
    explicit Table(std::vector<std::string> headers, int width = 14)
        : headers_(std::move(headers)), width_(width) {
        for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < headers_.size(); ++i)
            std::printf("%*s", width_, std::string(static_cast<std::size_t>(width_) - 2, '-').c_str());
        std::printf("\n");
    }

    void row(const std::vector<std::string>& cells) {
        for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
        std::printf("\n");
    }

private:
    std::vector<std::string> headers_;
    int width_;
};

inline std::string fmt(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt_int(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    return buf;
}

// --- machine-readable bench output ------------------------------------------
//
// Perf-tracking benches (bench_simcore_throughput and future ones) record
// their headline numbers as a JSON array so the perf trajectory can be
// diffed across PRs.  The timestamp is passed in by the caller rather than
// read from the clock, keeping bench output reproducible under a fixed
// invocation.

struct JsonMetric {
    std::string name;    ///< bench / scenario identifier
    std::string metric;  ///< what is measured, e.g. "delivered_packets_per_sec"
    double value = 0.0;
    std::string timestamp;  ///< ISO-8601, supplied by the invoker
};

/// Serialize one metric as a JSON object (no trailing newline).
inline std::string json_metric_line(const JsonMetric& m) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, "
                  "\"timestamp\": \"%s\"}",
                  m.name.c_str(), m.metric.c_str(), m.value, m.timestamp.c_str());
    return buf;
}

/// Write `metrics` to `path` as a JSON array (e.g. BENCH_simcore.json),
/// merging with the file's existing entries: an existing entry survives
/// unless a new metric has the same ("name", "metric", "timestamp") triple.
/// Re-running a bench with a fresh timestamp therefore *appends* a row,
/// preserving the perf trajectory across PRs; re-running with the same
/// timestamp overwrites in place (idempotent CI retries).  Returns false
/// (and prints a note) if the file cannot be opened.
inline bool write_bench_json(const std::string& path, const std::vector<JsonMetric>& metrics) {
    // Entries this file writes one per line, so merge at line granularity:
    // keep prior lines whose ("name", "metric", "timestamp") triple is not
    // being rewritten.
    std::vector<std::string> kept;
    if (std::FILE* in = std::fopen(path.c_str(), "r")) {
        char line[512];
        while (std::fgets(line, sizeof(line), in) != nullptr) {
            std::string s(line);
            if (s.find("\"name\"") == std::string::npos) continue;  // brackets
            const bool replaced = std::any_of(
                metrics.begin(), metrics.end(), [&](const JsonMetric& m) {
                    return s.find("\"name\": \"" + m.name + "\"") != std::string::npos &&
                           s.find("\"metric\": \"" + m.metric + "\"") != std::string::npos &&
                           s.find("\"timestamp\": \"" + m.timestamp + "\"") !=
                               std::string::npos;
                });
            if (replaced) continue;
            while (!s.empty() && (s.back() == '\n' || s.back() == ',' || s.back() == ' '))
                s.pop_back();
            kept.push_back(s);
        }
        std::fclose(in);
    }

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::printf("warning: could not open %s for writing\n", path.c_str());
        return false;
    }
    std::fprintf(f, "[\n");
    const std::size_t total = kept.size() + metrics.size();
    std::size_t written = 0;
    for (const auto& line : kept)
        std::fprintf(f, "%s%s\n", line.c_str(), ++written < total ? "," : "");
    for (const auto& m : metrics)
        std::fprintf(f, "  %s%s\n", json_metric_line(m).c_str(),
                     ++written < total ? "," : "");
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
}

}  // namespace lbrm::bench
