// Figure 4: fixed vs variable heartbeat overhead rate as a function of the
// interval between data packets (h_min = 0.25 s, h_max = 32 s, backoff = 2).
//
// Reproduces the figure's two curves: the fixed scheme's rate climbs to
// 1/h_min = 4 packets/s while the variable scheme's rate approaches
// 1/h_max = 0.031 packets/s as dt grows.  Values come from the closed-form
// model, which tests/analysis_test.cpp proves identical to stepping the real
// HeartbeatScheduler.
#include "analysis/heartbeat_math.hpp"
#include "bench/bench_util.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::bench;

    HeartbeatConfig config;  // paper defaults: 0.25 / 32 / 2.0

    title("Figure 4: heartbeat overhead rate vs data packet interval dt");
    note("h_min = 0.25 s, h_max = 32 s, backoff = 2");
    note("");

    Table table({"dt (s)", "fixed (pkt/s)", "variable", "ratio"});
    const double points[] = {0.1,  0.25, 0.5,  1.0,   2.0,   5.0,   10.0,
                             20.0, 50.0, 120.0, 300.0, 1000.0};

    std::vector<std::string> csv;
    for (double dt : points) {
        const double fixed = analysis::fixed_heartbeat_rate(0.25, dt);
        const double variable = analysis::variable_heartbeat_rate(config, dt);
        const double ratio = variable > 0 ? fixed / variable : (fixed > 0 ? -1 : 1);
        table.row({fmt(dt, 2), fmt(fixed, 4), fmt(variable, 4),
                   ratio < 0 ? "inf" : fmt(ratio, 1)});
        csv.push_back(fmt(dt, 3) + "," + fmt(fixed, 5) + "," + fmt(variable, 5));
    }

    note("");
    note("CSV: dt,fixed_rate,variable_rate");
    for (const auto& line : csv) note(line);

    note("");
    note("Expected shape (paper): fixed rate -> 1/h_min = 4 pkt/s;");
    note("variable rate -> 1/h_max = 0.031 pkt/s; both 0 when dt < h_min.");
    return 0;
}
