// Chaos & failover bench: receiver-reliability under scripted churn.
//
// Runs the five fault classes of sim/chaos.hpp -- correlated site
// blackouts, a primary-logger failover storm (Section 2.2.3),
// partition-and-rejoin (group re-estimation included), crash-on-receive +
// send-and-crash churn, and a blackout under logger rotation (Section
// 2.2.1) -- each against the 20-site full-protocol scenario with baseline
// feed loss, and reports per class: recovery-latency percentiles over the
// fault windows, the lost-forever count (the paper's claim: always 0),
// and NACK/heartbeat overhead per update.  Headline rows land in
// BENCH_simcore.json ("chaos_<class>").
//
// Two hard gates (exit 1):
//   * lost_forever must be 0 in every fault class -- receiver reliability
//     is the protocol's whole contract (Section 2.1).
//   * a fault-free run with an armed-but-empty ChaosEngine must produce a
//     bit-identical packet trace (FNV-1a over the link-level tap) to a run
//     with no engine at all: the chaos layer compiled in but idle is free.
//
// Usage:
//   bench_chaos [--json PATH] [--timestamp ISO8601] [--sites N]
//               [--receivers N] [--updates N] [--loss P]
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/chaos.hpp"
#include "sim/loss_model.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct Fnv1a {
    std::uint64_t h = 14695981039346656037ULL;
    void feed(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ULL;
        }
    }
    template <typename T>
    void feed_value(T v) {
        feed(&v, sizeof v);
    }
};

struct Options {
    std::string json_path = "BENCH_simcore.json";
    std::string timestamp = "unspecified";
    std::size_t sites = 20;
    std::uint32_t receivers = 10;
    std::uint64_t updates = 120;
    double loss = 0.02;
};

ScenarioConfig base_config(const Options& opt) {
    ScenarioConfig config;
    config.topology.sites = static_cast<std::uint32_t>(opt.sites);
    config.topology.receivers_per_site = opt.receivers;
    config.topology.replicas = 2;  // the storm needs a promotion chain
    config.sim.tree_cache_capacity = 64;
    config.seed = 77;
    return config;
}

void add_feed_loss(DisScenario& scenario, double loss) {
    // Baseline loss on every backbone -> site feed: NACKs and secondary
    // repairs are already flowing when the faults strike, so the bench
    // measures recovery under churn, not on a pristine network.
    const DisTopology& topo = scenario.topology();
    for (const auto& site : topo.sites)
        scenario.network().set_loss(topo.backbone, site.router,
                                    std::make_unique<BernoulliLoss>(loss));
}

/// The shared traffic pattern: warmup, `updates` sends at a 25 ms cadence
/// (so every scheduled fault window overlaps live traffic), long drain for
/// NACK chains, failover promotion and post-heal catch-up.
void drive_traffic(DisScenario& scenario, std::uint64_t updates) {
    scenario.run_for(millis(500));
    for (std::uint64_t i = 0; i < updates; ++i) {
        scenario.send_update(std::size_t{200});
        scenario.run_for(millis(25));
    }
    scenario.run_for(secs(8.0));
}

struct ClassResult {
    std::string name;
    RecoveryStats recovery;
    ReliabilityAudit audit;
    double nacks_per_update = 0.0;
    double heartbeats_per_update = 0.0;
    std::uint64_t faults_applied = 0;
    std::uint64_t revivals = 0;
    std::uint64_t sampler_rows = 0;
};

struct ClassSpec {
    std::string name;
    std::function<void(ScenarioConfig&)> configure;  ///< may be null
    std::function<ChaosSchedule(const DisScenario&)> schedule;
};

ClassResult run_class(const Options& opt, const ClassSpec& spec) {
    ScenarioConfig config = base_config(opt);
    if (spec.configure) spec.configure(config);

    DisScenario scenario{config};
    add_feed_loss(scenario, opt.loss);

    const ChaosSchedule schedule = spec.schedule(scenario);
    ChaosEngine engine{scenario, schedule};
    scenario.start();
    scenario.start_sampling(millis(100));
    engine.arm();
    drive_traffic(scenario, opt.updates);

    ClassResult result;
    result.name = spec.name;
    result.audit = audit_reliability(scenario);
    result.faults_applied = engine.faults_applied();
    result.revivals = engine.revivals();
    result.sampler_rows = scenario.sampler().rows();

    // Recovery latency over the union of fault-active windows: sequences
    // sent while at least the first fault had struck and the last had not
    // yet healed -- the updates whose settle time actually includes
    // blackout / crash recovery.
    TimePoint win_start{};
    TimePoint win_end{};
    for (const auto& w : engine.windows()) {
        if (win_end == TimePoint{} || w.start < win_start) win_start = w.start;
        if (w.heal > win_end) win_end = w.heal;
    }
    result.recovery = settle_latency(scenario, win_start, win_end);

    obs::Metrics& m = scenario.metrics();
    const double updates = static_cast<double>(opt.updates);
    result.nacks_per_update = static_cast<double>(m.value("proto.receiver.nacks_sent")) / updates;
    result.heartbeats_per_update =
        static_cast<double>(m.value("proto.sender.heartbeats_sent")) / updates;
    return result;
}

// --- the five fault classes -------------------------------------------------

std::vector<ClassSpec> fault_classes(const Options& opt) {
    std::vector<ClassSpec> classes;

    classes.push_back(
        {"blackouts", nullptr, [&opt](const DisScenario&) {
             // Randomized correlated outages, drawn from a dedicated RNG
             // stream (never the scenario's): 4 sites go dark for 250-700 ms
             // somewhere inside the send window.
             Rng rng{20250809};
             return ChaosSchedule::correlated_blackouts(rng, opt.sites, 4, secs(2.8),
                                                        millis(250), millis(700));
         }});

    classes.push_back(
        {"failover_storm", nullptr, [](const DisScenario&) {
             // Primary and replica 0 crash together mid-stream: the
             // LogStore handoff times out, candidate 0 stays silent, and
             // the sender must walk the chain to replica 1 (Section 2.2.3)
             // while both casualties later revive as stale cores.
             ChaosSchedule schedule;
             schedule.events.push_back(PrimaryCrash{secs(0.8), secs(2.5)});
             schedule.events.push_back(ReplicaCrash{0, secs(0.8), secs(3.0)});
             return schedule;
         }});

    classes.push_back(
        {"partition", nullptr, [](const DisScenario&) {
             // A whole site drops off the tree and rejoins 1.5 s later: its
             // receivers must close every gap the isolation opened, and the
             // sender's statistical-ACK estimate must reconverge.
             ChaosSchedule schedule;
             schedule.events.push_back(SitePartition{1, secs(0.8), secs(1.5)});
             return schedule;
         }});

    classes.push_back(
        {"crash_churn", nullptr, [](const DisScenario& scenario) {
             // Packet-triggered crashes: a receiver dies the instant it
             // delivers seq 6; the source dies right after multicasting
             // seq 12 (retries, heartbeats and ACK machinery go dark until
             // revival, and updates sent while dark must still arrive).
             ChaosSchedule schedule;
             schedule.events.push_back(CrashOnReceive{
                 scenario.topology().sites[2].receivers[0], SeqNum{6}, millis(400)});
             schedule.events.push_back(SendAndCrash{SeqNum{12}, millis(100)});
             return schedule;
         }});

    classes.push_back(
        {"rotation",
         [](ScenarioConfig& config) {
             // Section 2.2.1 alternative: every receiver host doubles as a
             // secondary and NACK targets rotate each second.
             config.rotate_site_loggers = true;
             config.rotation_slot = secs(1.0);
         },
         [](const DisScenario&) {
             ChaosSchedule schedule;
             schedule.events.push_back(SiteBlackout{1, secs(0.8), millis(600)});
             return schedule;
         }});

    return classes;
}

// --- idle-identity gate -----------------------------------------------------

std::uint64_t fault_free_hash(const Options& opt, bool with_idle_engine) {
    ScenarioConfig config = base_config(opt);
    DisScenario scenario{config};
    add_feed_loss(scenario, opt.loss);

    Fnv1a hash;
    scenario.network().set_tap([&](TimePoint at, const Link& link,
                                   const Packet& packet, bool delivered) {
        hash.feed_value(at.time_since_epoch().count());
        hash.feed_value(link.from().value());
        hash.feed_value(link.to().value());
        hash.feed_value(static_cast<std::uint8_t>(delivered));
        const auto bytes = encode(packet);
        hash.feed(bytes.data(), bytes.size());
    });

    std::unique_ptr<ChaosEngine> engine;
    if (with_idle_engine) engine = std::make_unique<ChaosEngine>(scenario, ChaosSchedule{});
    scenario.start();
    if (engine) engine->arm();
    drive_traffic(scenario, opt.updates / 4);  // identity needs no long run
    return hash.h;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::printf("missing value for %s\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--json") == 0) opt.json_path = next("--json");
        else if (std::strcmp(argv[i], "--timestamp") == 0) opt.timestamp = next("--timestamp");
        else if (std::strcmp(argv[i], "--sites") == 0)
            opt.sites = static_cast<std::size_t>(std::atoll(next("--sites")));
        else if (std::strcmp(argv[i], "--receivers") == 0)
            opt.receivers = static_cast<std::uint32_t>(std::atoll(next("--receivers")));
        else if (std::strcmp(argv[i], "--updates") == 0)
            opt.updates = static_cast<std::uint64_t>(std::atoll(next("--updates")));
        else if (std::strcmp(argv[i], "--loss") == 0) opt.loss = std::atof(next("--loss"));
    }
    if (opt.sites < 4 || opt.updates < 16) {
        std::printf("bench_chaos needs --sites >= 4 and --updates >= 16 "
                    "(fault schedules reference site 2 and seq 12)\n");
        return 2;
    }

    const auto wall0 = std::chrono::steady_clock::now();

    title("Chaos & failover: " + fmt_int(opt.sites) + " sites x " +
          fmt_int(opt.receivers) + " receivers, " + fmt_int(opt.updates) +
          " updates at " + fmt(opt.loss * 100.0, 1) + "% feed loss");

    // Gate 1: the chaos layer compiled in but idle must be invisible.
    const std::uint64_t hash_plain = fault_free_hash(opt, false);
    const std::uint64_t hash_idle = fault_free_hash(opt, true);
    {
        char buf[80];
        std::snprintf(buf, sizeof buf, "idle-engine identity: %016llx vs %016llx",
                      static_cast<unsigned long long>(hash_plain),
                      static_cast<unsigned long long>(hash_idle));
        note(buf);
    }
    if (hash_plain != hash_idle) {
        note("ERROR: armed-but-empty ChaosEngine perturbed the packet trace");
        return 1;
    }
    note("");

    std::vector<ClassResult> results;
    for (const ClassSpec& spec : fault_classes(opt)) results.push_back(run_class(opt, spec));

    Table table({"class", "faults", "revivals", "lost", "rec_p50_ms", "rec_p99_ms",
                 "nacks/upd", "hb/upd"});
    bool reliable = true;
    bool sampled = true;
    for (const ClassResult& r : results) {
        table.row({r.name, fmt_int(r.faults_applied), fmt_int(r.revivals),
                   fmt_int(r.audit.lost_forever), fmt(r.recovery.p50_s * 1e3, 1),
                   fmt(r.recovery.p99_s * 1e3, 1), fmt(r.nacks_per_update, 2),
                   fmt(r.heartbeats_per_update, 2)});
        if (r.audit.lost_forever != 0) reliable = false;
        if (r.sampler_rows == 0) sampled = false;
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
    note("");
    note("recovery percentiles window: updates sent while any fault was active");
    note("sampler rows per class: " + fmt_int(results.front().sampler_rows) +
         " at 100 ms sim cadence; wall " + fmt(wall_seconds, 2) + " s total");

    if (!reliable) {
        note("ERROR: lost_forever != 0 -- receiver reliability violated under churn");
        return 1;
    }
    if (obs::kTelemetryEnabled && !sampled) {
        note("ERROR: sampler recorded no rows during a fault-class run");
        return 1;
    }

    std::vector<JsonMetric> metrics;
    for (const ClassResult& r : results) {
        const std::string name = "chaos_" + r.name;
        metrics.push_back({name, "recovery_p50_ms", r.recovery.p50_s * 1e3, opt.timestamp});
        metrics.push_back({name, "recovery_p99_ms", r.recovery.p99_s * 1e3, opt.timestamp});
        metrics.push_back({name, "lost_forever",
                           static_cast<double>(r.audit.lost_forever), opt.timestamp});
        metrics.push_back({name, "nacks_per_update", r.nacks_per_update, opt.timestamp});
        metrics.push_back({name, "heartbeats_per_update", r.heartbeats_per_update,
                           opt.timestamp});
        metrics.push_back({name, "faults_applied",
                           static_cast<double>(r.faults_applied), opt.timestamp});
        metrics.push_back({name, "revivals", static_cast<double>(r.revivals),
                           opt.timestamp});
    }
    write_bench_json(opt.json_path, metrics);
    note("JSON written to " + opt.json_path);
    for (const auto& m : metrics) note(json_metric_line(m));
    return 0;
}
