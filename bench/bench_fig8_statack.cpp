// Figure 8 / Section 2.3: operation of statistical acknowledgement.
//
// Reproduces the figure's timeline -- Acker Selection Packet, designated-
// acker responses, a data packet that loses its ACKs, and the source's
// immediate re-multicast -- and quantifies the headline claim: widespread
// loss is detected and repaired "within one round-trip time", versus the
// heartbeat-plus-NACK path that needs h_min + RTT.
#include "bench/bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct RunResult {
    double repair_latency_max = 0;  // send -> last receiver has the packet
    double repair_latency_mean = 0;
    std::uint64_t remulticasts = 0;
    std::size_t delivered = 0;
};

RunResult run(bool stat_ack) {
    ScenarioConfig config;
    config.topology.sites = 20;
    config.topology.receivers_per_site = 3;
    config.stat_ack.enabled = stat_ack;
    config.stat_ack.k = 5;
    config.stat_ack.initial_probe_p = 0.25;
    config.stat_ack.probe_target_replies = 4;
    config.stat_ack.probe_repeats = 2;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(5.0));  // probing + first epoch
    scenario.send_update(std::size_t{128});
    scenario.run_for(secs(2.0));

    // Drop the next data packet on the source's uplink: all 20 sites miss it.
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{128});
    const SeqNum seq = scenario.sender().last_seq();
    const TimePoint sent = *scenario.sent_at(seq);
    scenario.run_for(millis(30));
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(10.0));

    RunResult result;
    const auto times = scenario.delivery_times(seq);
    result.delivered = times.size();
    double sum = 0;
    for (const auto& [node, when] : times) {
        const double latency = to_seconds(when - sent);
        sum += latency;
        result.repair_latency_max = std::max(result.repair_latency_max, latency);
    }
    result.repair_latency_mean = times.empty() ? -1 : sum / static_cast<double>(times.size());
    result.remulticasts = scenario.sender().stat_ack().remulticast_decisions();
    return result;
}

}  // namespace

int main() {
    title("Figure 8 / Section 2.3: statistical acknowledgement under");
    note("whole-group loss (source uplink drops one data packet; 20 sites)");
    note("");

    const RunResult with = run(/*stat_ack=*/true);
    const RunResult without = run(/*stat_ack=*/false);

    Table table({"protocol", "remcasts", "mean (ms)", "max (ms)", "delivered"});
    table.row({"stat-ack", fmt_int(with.remulticasts),
               fmt(with.repair_latency_mean * 1000, 1),
               fmt(with.repair_latency_max * 1000, 1), fmt_int(with.delivered)});
    table.row({"heartbeat", fmt_int(without.remulticasts),
               fmt(without.repair_latency_mean * 1000, 1),
               fmt(without.repair_latency_max * 1000, 1), fmt_int(without.delivered)});

    note("");
    note("Expected shape (paper): with statistical acking the source detects");
    note("missing ACKs at t_wait (~RTT) and re-multicasts immediately, so the");
    note("group recovers in ~1 RTT + t_wait.  Without it, recovery waits for");
    note("the first heartbeat (h_min = 250 ms) plus a NACK round trip.");

    // Timeline trace (Figure 8 shape) on a tiny run.
    note("");
    note("--- epoch timeline (4 sites, k=2) ---");
    {
        ScenarioConfig config;
        config.topology.sites = 4;
        config.topology.receivers_per_site = 2;
        config.stat_ack.enabled = true;
        config.stat_ack.k = 2;
        config.stat_ack.initial_probe_p = 0.5;
        config.stat_ack.probe_target_replies = 2;
        config.stat_ack.probe_repeats = 1;
        DisScenario scenario(config);
        scenario.start();
        scenario.run_for(secs(3.0));
        scenario.send_update(std::size_t{64});
        scenario.run_for(secs(1.0));
        for (const auto& n : scenario.notices()) {
            const char* what = nullptr;
            switch (n.kind) {
                case NoticeKind::kEpochStarted: what = "EPOCH_STARTED"; break;
                case NoticeKind::kDesignatedAcker: what = "DESIGNATED_ACKER"; break;
                case NoticeKind::kRemulticast: what = "REMULTICAST"; break;
                default: break;
            }
            if (what != nullptr)
                note("  t=" + fmt(to_seconds(n.at), 3) + "s  node " +
                     fmt_int(n.node.value()) + "  " + what + " (arg " +
                     fmt_int(n.arg) + ")");
        }
        note("  expected acks per data packet: " +
             fmt_int(scenario.sender().stat_ack().expected_acks()));
    }
    return 0;
}
