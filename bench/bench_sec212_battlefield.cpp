// Section 2.1.2's battlefield packet-budget table: the whole-simulation
// traffic for the STOW-97-scale scenario (100,000 dynamic + 100,000
// terrain entities) under fixed vs variable heartbeats, plus a sensitivity
// sweep over the terrain update interval.
#include "bench/bench_util.hpp"
#include "dis/bandwidth_model.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::bench;
    using namespace lbrm::dis;

    title("Section 2.1.2: DIS battlefield packet budget");
    note("100,000 dynamic entities @ 1 PDU/s; 100,000 terrain entities");
    note("changing every 120 s; h_min 0.25 s, h_max 32 s, backoff 2");
    note("");

    BattlefieldSpec spec;  // paper defaults
    const BandwidthBreakdown fixed = fixed_heartbeat_budget(spec);
    const BandwidthBreakdown variable = variable_heartbeat_budget(spec);

    Table table({"scheme", "dynamic", "terrain", "heartbeat", "total", "hb frac"});
    table.row({"fixed", fmt(fixed.dynamic_pps, 0), fmt(fixed.terrain_data_pps, 0),
               fmt(fixed.terrain_heartbeat_pps, 0), fmt(fixed.total(), 0),
               fmt(fixed.heartbeat_fraction(), 3)});
    table.row({"variable", fmt(variable.dynamic_pps, 0),
               fmt(variable.terrain_data_pps, 0),
               fmt(variable.terrain_heartbeat_pps, 0), fmt(variable.total(), 0),
               fmt(variable.heartbeat_fraction(), 3)});

    note("");
    note("Paper: fixed heartbeats contribute 400,000 of 500,000 pkt/s (4/5);");
    note("the variable scheme cuts terrain keep-alive traffic ~53x.");

    note("");
    note("--- sensitivity: terrain update interval ---");
    Table sweep({"dt (s)", "fixed total", "variable total", "savings"}, 16);
    for (double dt : {30.0, 60.0, 120.0, 300.0, 600.0}) {
        BattlefieldSpec s = spec;
        s.terrain_update_interval_s = dt;
        const double f = fixed_heartbeat_budget(s).total();
        const double v = variable_heartbeat_budget(s).total();
        sweep.row({fmt(dt, 0), fmt(f, 0), fmt(v, 0), fmt(f / v, 2)});
    }
    note("");
    note("Expected shape: the quieter the terrain, the more the fixed scheme");
    note("wastes (asymptote 500k pkt/s) while the variable scheme's budget");
    note("approaches the dynamic traffic floor (100k pkt/s).");
    return 0;
}
