// Table 2: accuracy of the N_sl (secondary logger count) estimate as the
// number of repeated probes increases.  Monte-Carlo measurement against the
// closed form sigma_n = sqrt(N (1-p)/p) / sqrt(n).
#include "analysis/estimator_math.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

std::uint32_t probe_replies(lbrm::Rng& rng, std::uint32_t n, double p) {
    std::uint32_t replies = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        if (rng.bernoulli(p)) ++replies;
    return replies;
}

}  // namespace

int main() {
    using namespace lbrm;
    using namespace lbrm::bench;

    const std::uint32_t n = 1000;  // actual secondary loggers
    const double p = 0.05;         // acknowledgement probability
    const int trials = 20000;

    title("Table 2: N_sl estimate accuracy vs probe count");
    note("N = 1000 secondary loggers, p_ack = 0.05, " + fmt_int(trials) + " trials");
    note("");

    Table table({"probes", "sigma (meas)", "sigma (model)", "vs sigma_1"});
    std::vector<std::string> csv;
    Rng rng{20250709};
    double sigma1 = 0.0;
    for (std::uint32_t probes = 1; probes <= 5; ++probes) {
        RunningStats stats;
        for (int t = 0; t < trials; ++t) {
            double sum = 0.0;
            for (std::uint32_t j = 0; j < probes; ++j)
                sum += static_cast<double>(probe_replies(rng, n, p)) / p;
            stats.add(sum / probes);
        }
        const double measured = stats.sample_stddev();
        const double model = analysis::repeated_probe_stddev(n, p, probes);
        if (probes == 1) sigma1 = measured;
        table.row({fmt_int(probes), fmt(measured, 2), fmt(model, 2),
                   fmt(measured / sigma1, 3)});
        csv.push_back(fmt_int(probes) + "," + fmt(measured, 4) + "," + fmt(model, 4));
    }

    note("");
    note("CSV: probes,sigma_measured,sigma_model");
    for (const auto& line : csv) note(line);

    note("");
    note("Expected shape (paper Table 2): sigma_n / sigma_1 = 1/sqrt(n):");
    note("  1.000, 0.707, 0.577, 0.500, 0.447");
    return 0;
}
