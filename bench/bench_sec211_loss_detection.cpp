// Section 2.1.1: loss-detection time under the burst congestion model.
//
// "Isolated losses and transient errors are discovered quickly and longer
// burst errors are discovered in time bounded by min(2 x t_burst, h_max)"
// (backoff = 2).  We reproduce the experiment on the simulated topology:
// a data packet is multicast exactly when a site's inbound tail circuit
// enters a total-loss burst of duration t_burst; we record when receivers
// at that site first detect the loss (via the variable heartbeat) and when
// they recover the packet.
#include "bench/bench_util.hpp"
#include "sim/scenario.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::bench;
    using namespace lbrm::sim;

    title("Section 2.1.1: loss detection time vs burst duration");
    note("h_min = 0.25 s, h_max = 32 s, backoff = 2; total loss on one site's");
    note("tail circuit starting exactly at the data transmission.");
    note("");

    Table table({"t_burst (s)", "detect (s)", "bound 2*tb", "recover (s)"});
    std::vector<std::string> csv;

    for (double t_burst : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        ScenarioConfig config;
        config.topology.sites = 2;
        config.topology.receivers_per_site = 4;
        config.stat_ack.enabled = false;
        DisScenario scenario(config);
        auto& network = scenario.network();
        const auto& topo = scenario.topology();
        scenario.start();

        // Prime so loggers/receivers are synchronized.
        scenario.send_update(std::size_t{128});
        scenario.run_for(secs(2.0));

        // Burst window starts at the next send instant.
        const TimePoint t0 = scenario.simulator().now();
        network.set_loss(topo.backbone, topo.sites[0].router,
                         std::make_unique<BurstSchedule>(std::vector<BurstSchedule::Window>{
                             {t0, t0 + secs(t_burst)}}));
        scenario.send_update(std::size_t{128});
        const SeqNum seq = scenario.sender().last_seq();
        scenario.run_for(secs(t_burst) + secs(70.0));

        // First detection of this seq at the bursty site.
        std::optional<TimePoint> detected;
        for (const auto& n : scenario.notices()) {
            if (n.kind == NoticeKind::kLossDetected && n.arg == seq.value()) {
                if (!detected || n.at < *detected) detected = n.at;
            }
        }
        // Last recovery among the site's receivers.
        std::optional<TimePoint> recovered;
        const auto times = scenario.delivery_times(seq);
        for (NodeId r : topo.sites[0].receivers) {
            auto it = times.find(r);
            if (it != times.end() && (!recovered || it->second > *recovered))
                recovered = it->second;
        }

        const double detect = detected ? to_seconds(*detected - t0) : -1.0;
        const double recover = recovered ? to_seconds(*recovered - t0) : -1.0;
        const double bound = std::min(2.0 * t_burst, 32.0) + 0.3;  // + h_min & prop slack
        table.row({fmt(t_burst, 2), fmt(detect, 3), fmt(std::min(2 * t_burst, 32.0), 2),
                   fmt(recover, 3)});
        csv.push_back(fmt(t_burst, 3) + "," + fmt(detect, 4) + "," + fmt(recover, 4));
        if (detect < 0 || detect > bound)
            note("  WARNING: detection outside the paper bound for t_burst=" +
                 fmt(t_burst, 2));
    }

    note("");
    note("CSV: t_burst,detect_seconds,recover_seconds");
    for (const auto& line : csv) note(line);

    note("");
    note("Expected shape (paper): detection ~h_min for isolated loss");
    note("(t_burst < h_min), and <= 2 x t_burst (cap h_max) for longer bursts.");
    return 0;
}
