// Table 1: ratio of fixed-heartbeat overhead to variable-heartbeat overhead
// as the backoff parameter changes (dt = 120 s, h_min = 0.25 s, h_max = 32 s).
//
// Two columns are reported:
//   * "exact": discrete heartbeat counts from the real scheduler semantics,
//     where the interval saturates at h_max (ratios plateau at ~68 once the
//     cap dominates);
//   * "continuous": the uncapped-geometric approximation, which is what the
//     published Table 1 column follows (within a few percent).
#include "analysis/heartbeat_math.hpp"
#include "bench/bench_util.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::bench;

    title("Table 1: Overhead(Fixed)/Overhead(Variable) vs backoff (dt = 120 s)");

    const double backoffs[] = {1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
    const double paper[] = {34.4, 53.3, 65.8, 74.8, 81.7, 87.3};

    Table table({"backoff", "exact", "continuous", "paper"});
    std::vector<std::string> csv;
    for (int i = 0; i < 6; ++i) {
        HeartbeatConfig config;
        config.backoff = backoffs[i];
        const double exact = analysis::overhead_ratio(config, 120.0);
        const double continuous = analysis::overhead_ratio_continuous(config, 120.0);
        table.row({fmt(backoffs[i], 1), fmt(exact, 1), fmt(continuous, 1),
                   fmt(paper[i], 1)});
        csv.push_back(fmt(backoffs[i], 1) + "," + fmt(exact, 2) + "," +
                      fmt(continuous, 2) + "," + fmt(paper[i], 1));
    }

    note("");
    note("CSV: backoff,ratio_exact,ratio_continuous,ratio_paper");
    for (const auto& line : csv) note(line);

    note("");
    note("Expected shape (paper): monotone increase with diminishing returns;");
    note("'the reduction in overhead is moderately sensitive to the backoff'.");
    note("The exact column plateaus at high backoff because h_max caps the");
    note("interval -- a real effect the paper's continuous figures gloss over.");
    return 0;
}
