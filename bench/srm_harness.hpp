// Helper wiring a wb/SRM-style deployment (baseline) onto the DIS topology
// for the Section 6 comparison benches: one SrmSenderCore at the source and
// one SrmMemberCore per receiver, all repairs flowing over global multicast.
#pragma once

#include <map>
#include <vector>

#include "baseline/srm.hpp"
#include "sim/network.hpp"
#include "sim/sim_host.hpp"
#include "sim/topology.hpp"

namespace lbrm::bench {

struct SrmDeployment {
    GroupId group{1};
    baseline::SrmSenderCore* sender = nullptr;
    std::map<NodeId, baseline::SrmMemberCore*> members;

    struct DeliveryRecord {
        NodeId node;
        SeqNum seq;
        TimePoint at{};
        bool recovered = false;
    };
    struct LossRecord {
        NodeId node;
        SeqNum seq;
        TimePoint at{};
    };
    std::vector<DeliveryRecord> deliveries;
    std::vector<LossRecord> losses;

    sim::Network* net = nullptr;
    NodeId source;

    /// Multicast one payload from the source through the network.
    void send(sim::Simulator& simulator, std::vector<std::uint8_t> payload) {
        Actions actions = sender->send(simulator.now(), std::move(payload));
        net->host(source)->protocol().inject(simulator.now(), *sender,
                                             std::move(actions));
    }
};

/// Attach SRM cores to every receiver in `topo` (no loggers involved).
/// Returned by unique_ptr: the app handlers capture the deployment's
/// address, so it must stay put for the network's lifetime.
inline std::unique_ptr<SrmDeployment> make_srm_deployment(
    sim::Network& net, const sim::DisTopology& topo, Duration rtt_to_source,
    Duration session_interval = secs(0.25), std::uint64_t seed = 1) {
    auto deployment = std::make_unique<SrmDeployment>();
    SrmDeployment& d = *deployment;
    d.net = &net;
    d.source = topo.source;

    baseline::SrmConfig base;
    base.group = d.group;
    base.source = topo.source;
    base.rtt_to_source = rtt_to_source;
    base.session_interval = session_interval;

    baseline::SrmConfig sender_config = base;
    sender_config.self = topo.source;
    auto& source_host = net.attach_host(topo.source);
    d.sender = dynamic_cast<baseline::SrmSenderCore*>(&source_host.protocol().add_core(
        std::make_unique<baseline::SrmSenderCore>(sender_config, seed)));
    net.join(d.group, topo.source);

    for (NodeId r : topo.all_receivers()) {
        baseline::SrmConfig member_config = base;
        member_config.self = r;
        auto& host = net.attach_host(r);
        AppHandlers handlers;
        SrmDeployment* dp = &d;
        handlers.on_data = [dp, r, &net](TimePoint, const DeliverData& data) {
            dp->deliveries.push_back(
                {r, data.seq, net.simulator().now(), data.recovered});
        };
        handlers.on_notice = [dp, r, &net](TimePoint, const Notice& n) {
            if (n.kind == NoticeKind::kLossDetected)
                dp->losses.push_back({r, SeqNum{static_cast<std::uint32_t>(n.arg)},
                                      net.simulator().now()});
        };
        d.members[r] = dynamic_cast<baseline::SrmMemberCore*>(&host.protocol().add_core(
            std::make_unique<baseline::SrmMemberCore>(member_config, seed * 7919 + r.value()),
            handlers));
        net.join(d.group, r);
    }

    source_host.protocol().start(net.simulator().now());
    for (NodeId r : topo.all_receivers())
        net.host(r)->protocol().start(net.simulator().now());

    return deployment;
}

}  // namespace lbrm::bench
