// Routing-scale bench (perf trajectory, not a paper artifact).
//
// Measures the tentpole of this PR: hierarchical site/backbone routing
// tables (DESIGN.md "Hierarchical routing") versus the flat O(n^2)
// next-hop matrices, on DIS topologies the size the paper argues for --
// thousands of sites behind tail circuits.
//
// Two scenarios:
//
//   routing_100k  -- 1,000 sites x 97 receivers (~100k nodes).  Builds the
//                    hierarchical tables and reports finalize() wall time,
//                    routing-table bytes, bytes per node and peak RSS.  The
//                    flat matrices at this size would need n^2 x 12 bytes
//                    (~120 GB), so their footprint is computed analytically
//                    and reported as the ratio -- the acceptance criterion
//                    is >= 10x; the real number is ~500x.
//   routing_ab    -- a size both schemes can actually run (~10k nodes):
//                    finalize() wall time and table bytes for each, plus a
//                    multicast sanity check that both deliver the same
//                    packet count.
//
// Usage:
//   bench_routing_scale [--json PATH] [--timestamp ISO8601]
//                       [--sites N] [--receivers N]
//                       [--ab-sites N] [--ab-receivers N]
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

DisTopologySpec scale_spec(std::uint32_t sites, std::uint32_t receivers_per_site) {
    DisTopologySpec spec;
    spec.sites = sites;
    spec.receivers_per_site = receivers_per_site;
    return spec;
}

struct BuildStats {
    double finalize_seconds = 0.0;
    std::size_t nodes = 0;
    std::size_t table_bytes = 0;
    std::uint64_t delivered = 0;
};

/// Build the topology, finalize, and fire one site-scoped + one global
/// multicast so the path and tree machinery is exercised, not just built.
BuildStats run_build(bool flat, std::uint32_t sites, std::uint32_t receivers,
                     bool send_traffic) {
    Simulator simulator;
    SimConfig config;
    config.flat_routes = flat;
    Network net{simulator, 42, config};
    const DisTopology topo = make_dis_topology(net, scale_spec(sites, receivers));

    const auto start = std::chrono::steady_clock::now();
    net.finalize();
    const auto stop = std::chrono::steady_clock::now();

    BuildStats out;
    out.finalize_seconds = std::chrono::duration<double>(stop - start).count();
    out.nodes = net.node_count();
    out.table_bytes = net.routing_table_bytes();

    if (send_traffic) {
        const GroupId group{1};
        for (NodeId r : topo.all_receivers()) net.join(group, r);
        std::uint32_t seq = 0;
        for (McastScope scope : {McastScope::kGlobal, McastScope::kSite})
            net.multicast(topo.source,
                          Packet{Header{group, topo.source, topo.source},
                                 DataBody{SeqNum{++seq}, EpochId{0},
                                          std::vector<std::uint8_t>(64, 0xEE)}},
                          scope);
        simulator.run_for(secs(5.0));
        for (const auto& site : topo.sites)
            for (NodeId r : site.receivers)
                out.delivered +=
                    net.link(site.router, r)->stats().packets_of(PacketType::kData);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_simcore.json";
    std::string timestamp = "unspecified";
    std::uint32_t sites = 1000;
    std::uint32_t receivers = 97;  // 1000 x (router + secondary + 97) + 5 = ~99k
    std::uint32_t ab_sites = 100;
    std::uint32_t ab_receivers = 97;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::printf("missing value for %s\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--json") == 0) json_path = next("--json");
        else if (std::strcmp(argv[i], "--timestamp") == 0) timestamp = next("--timestamp");
        else if (std::strcmp(argv[i], "--sites") == 0)
            sites = static_cast<std::uint32_t>(std::atoi(next("--sites")));
        else if (std::strcmp(argv[i], "--receivers") == 0)
            receivers = static_cast<std::uint32_t>(std::atoi(next("--receivers")));
        else if (std::strcmp(argv[i], "--ab-sites") == 0)
            ab_sites = static_cast<std::uint32_t>(std::atoi(next("--ab-sites")));
        else if (std::strcmp(argv[i], "--ab-receivers") == 0)
            ab_receivers = static_cast<std::uint32_t>(std::atoi(next("--ab-receivers")));
    }

    std::vector<JsonMetric> metrics;

    title("Hierarchical routing at scale: " + fmt_int(sites) + " sites x " +
          fmt_int(receivers) + " receivers");
    const BuildStats big = run_build(/*flat=*/false, sites, receivers,
                                     /*send_traffic=*/true);
    // The flat matrices would hold n^2 next-hop entries (4B) + n^2 link
    // pointers (8B); computed analytically because at 100k nodes that is
    // ~120 GB and cannot be allocated.
    const double flat_bytes =
        static_cast<double>(big.nodes) * static_cast<double>(big.nodes) * 12.0;
    const double ratio = flat_bytes / static_cast<double>(big.table_bytes);
    const double rss_mib = static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);

    Table table({"nodes", "finalize s", "table MiB", "B/node", "flat MiB", "ratio"});
    table.row({fmt_int(big.nodes), fmt(big.finalize_seconds, 3),
               fmt(static_cast<double>(big.table_bytes) / (1024.0 * 1024.0), 1),
               fmt(static_cast<double>(big.table_bytes) / static_cast<double>(big.nodes), 1),
               fmt(flat_bytes / (1024.0 * 1024.0), 0), fmt(ratio, 0) + "x"});
    note("");
    note("delivered sanity: " + fmt_int(big.delivered) + " packets; peak RSS " +
         fmt(rss_mib, 1) + " MiB");

    metrics.push_back({"routing_scale", "nodes",
                       static_cast<double>(big.nodes), timestamp});
    metrics.push_back(
        {"routing_scale", "finalize_seconds_hier", big.finalize_seconds, timestamp});
    metrics.push_back({"routing_scale", "routing_table_bytes_hier",
                       static_cast<double>(big.table_bytes), timestamp});
    metrics.push_back({"routing_scale", "routing_table_bytes_per_node",
                       static_cast<double>(big.table_bytes) /
                           static_cast<double>(big.nodes),
                       timestamp});
    metrics.push_back(
        {"routing_scale", "routing_table_bytes_flat_computed", flat_bytes, timestamp});
    metrics.push_back({"routing_scale", "flat_to_hier_memory_ratio", ratio, timestamp});
    metrics.push_back({"routing_scale", "peak_rss_bytes",
                       static_cast<double>(peak_rss_bytes()), timestamp});

    title("Flat vs hierarchical A/B: " + fmt_int(ab_sites) + " sites x " +
          fmt_int(ab_receivers) + " receivers");
    const BuildStats hier = run_build(/*flat=*/false, ab_sites, ab_receivers,
                                      /*send_traffic=*/true);
    const BuildStats flat = run_build(/*flat=*/true, ab_sites, ab_receivers,
                                      /*send_traffic=*/true);
    Table ab({"scheme", "nodes", "finalize s", "table MiB", "delivered"});
    ab.row({"hier", fmt_int(hier.nodes), fmt(hier.finalize_seconds, 3),
            fmt(static_cast<double>(hier.table_bytes) / (1024.0 * 1024.0), 1),
            fmt_int(hier.delivered)});
    ab.row({"flat", fmt_int(flat.nodes), fmt(flat.finalize_seconds, 3),
            fmt(static_cast<double>(flat.table_bytes) / (1024.0 * 1024.0), 1),
            fmt_int(flat.delivered)});
    if (hier.delivered != flat.delivered) {
        note("ERROR: schemes delivered different packet counts");
        return 1;
    }

    metrics.push_back(
        {"routing_ab", "finalize_seconds_hier", hier.finalize_seconds, timestamp});
    metrics.push_back(
        {"routing_ab", "finalize_seconds_flat", flat.finalize_seconds, timestamp});
    metrics.push_back({"routing_ab", "routing_table_bytes_hier",
                       static_cast<double>(hier.table_bytes), timestamp});
    metrics.push_back({"routing_ab", "routing_table_bytes_flat",
                       static_cast<double>(flat.table_bytes), timestamp});

    write_bench_json(json_path, metrics);
    note("");
    note("JSON written to " + json_path);
    for (const auto& m : metrics) note(json_metric_line(m));
    return 0;
}
