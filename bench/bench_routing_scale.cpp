// Routing-scale bench (perf trajectory, not a paper artifact).
//
// Measures the million-node scenario engine (DESIGN.md "Scale
// engineering"): hierarchical site/backbone routing tables versus the flat
// O(n^2) next-hop matrices, the serial/parallel/lazy finalize modes, and a
// full protocol run -- sender, loggers, a receiver core per host, real
// multicast traffic -- at a million nodes under the constant-memory
// CountingObserver.
//
// Scenarios:
//
//   routing_100k   -- 1,000 sites x 97 receivers (~100k nodes).  Builds the
//                     hierarchical tables and reports finalize() wall time,
//                     routing-table bytes, bytes per node and peak RSS.  The
//                     flat matrices at this size would need n^2 x 12 bytes
//                     (~120 GB), so their footprint is computed analytically
//                     and reported as the ratio -- the acceptance criterion
//                     is >= 10x; the real number is ~500x.
//   finalize_modes -- the same topology finalized serially, in parallel and
//                     lazily; wall seconds, rows materialised and table
//                     bytes per mode, plus the best-mode speedup.
//   modes_hash_ab  -- at the A/B size, all three modes must produce the
//                     same routing_table_hash() (bit-identical tables).
//   routing_ab     -- a size both schemes can actually run (~10k nodes):
//                     finalize() wall time and table bytes for each, plus a
//                     multicast sanity check that both deliver the same
//                     packet count.
//   full_protocol  -- 2,000 sites x 499 receivers (>= 1M nodes) wired as a
//                     complete DisScenario (lazy finalize, CountingObserver),
//                     driven with real sends + protocol timers; reports
//                     build/traffic seconds, deliveries, peak RSS and
//                     RSS bytes per node.
//
// The headline finalize additionally runs under a TraceRecorder and exports
// Chrome trace_event JSON (--trace PATH, open in chrome://tracing or
// Perfetto).  The bench computes span coverage -- the fraction of the
// outermost "finalize" span accounted for by its phase children
// (finalize.prep + finalize.routes) -- and fails if it drops below 90%,
// so the trace stays an honest breakdown rather than decoration.
//
// Usage:
//   bench_routing_scale [--json PATH] [--timestamp ISO8601] [--trace PATH]
//                       [--repeat N] [--sites N] [--receivers N]
//                       [--ab-sites N] [--ab-receivers N]
//                       [--full-sites N] [--full-receivers N] [--skip-full]
//                       [--full-only] [--full-name NAME]
//                       [--full-dormant 0|1] [--active-per-site N]
//
// --repeat N reruns each finalize measurement N times and reports the
// minimum (the least noisy estimator for wall time on a shared machine).
// --full-only skips the routing phases and runs just the full-protocol
// scenario -- with --full-sites/--full-receivers/--active-per-site this is
// how the 10M-node memory-diet run is recorded (see BENCH_simcore.json).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

DisTopologySpec scale_spec(std::uint32_t sites, std::uint32_t receivers_per_site) {
    DisTopologySpec spec;
    spec.sites = sites;
    spec.receivers_per_site = receivers_per_site;
    return spec;
}

double now_seconds_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct BuildStats {
    double finalize_seconds = 0.0;
    std::size_t nodes = 0;
    std::size_t table_bytes = 0;
    std::uint64_t delivered = 0;
};

/// Build the topology, finalize, and fire one site-scoped + one global
/// multicast so the path and tree machinery is exercised, not just built.
BuildStats run_build(bool flat, std::uint32_t sites, std::uint32_t receivers,
                     bool send_traffic) {
    Simulator simulator;
    SimConfig config;
    config.flat_routes = flat;
    Network net{simulator, 42, config};
    const DisTopology topo = make_dis_topology(net, scale_spec(sites, receivers));

    const auto start = std::chrono::steady_clock::now();
    net.finalize();

    BuildStats out;
    out.finalize_seconds = now_seconds_since(start);
    out.nodes = net.node_count();
    out.table_bytes = net.routing_table_bytes();

    if (send_traffic) {
        const GroupId group{1};
        for (NodeId r : topo.all_receivers()) net.join(group, r);
        std::uint32_t seq = 0;
        for (McastScope scope : {McastScope::kGlobal, McastScope::kSite})
            net.multicast(topo.source,
                          Packet{Header{group, topo.source, topo.source},
                                 DataBody{SeqNum{++seq}, EpochId{0},
                                          std::vector<std::uint8_t>(64, 0xEE)}},
                          scope);
        simulator.run_for(secs(5.0));
        for (const auto& site : topo.sites)
            for (NodeId r : site.receivers)
                out.delivered +=
                    net.link(site.router, r)->stats().packets_of(PacketType::kData);
    }
    return out;
}

struct ModeStats {
    double finalize_seconds = 0.0;
    std::size_t nodes = 0;
    std::size_t rows_built = 0;
    std::size_t table_bytes = 0;
};

/// Finalize the topology under one build mode; no traffic, so lazy pays
/// only for border rows + backbone (its actual finalize cost).
ModeStats run_mode(SimFinalizeMode mode, unsigned threads, std::uint32_t sites,
                   std::uint32_t receivers) {
    Simulator simulator;
    SimConfig config;
    config.finalize_mode = mode;
    config.finalize_threads = threads;
    Network net{simulator, 42, config};
    make_dis_topology(net, scale_spec(sites, receivers));

    const auto start = std::chrono::steady_clock::now();
    net.finalize();

    ModeStats out;
    out.finalize_seconds = now_seconds_since(start);
    out.nodes = net.node_count();
    out.rows_built = net.site_rows_built();
    out.table_bytes = net.routing_table_bytes();
    return out;
}

/// routing_table_hash() under one build mode (forces every lazy row).
std::uint64_t mode_hash(SimFinalizeMode mode, unsigned threads, std::uint32_t sites,
                        std::uint32_t receivers) {
    Simulator simulator;
    SimConfig config;
    config.finalize_mode = mode;
    config.finalize_threads = threads;
    Network net{simulator, 42, config};
    make_dis_topology(net, scale_spec(sites, receivers));
    net.finalize();
    return net.routing_table_hash();
}

/// Fraction of the outermost "finalize" span covered by its direct phase
/// children (finalize.prep + finalize.routes).  Those two partition the
/// finalize body, so anything below ~1.0 is unattributed finalize time.
double finalize_span_coverage(const obs::TraceRecorder& rec) {
    const auto spans = rec.spans();
    const obs::TraceRecorder::Span* finalize = nullptr;
    for (const auto& s : spans)
        if (std::strcmp(s.name, "finalize") == 0 &&
            (finalize == nullptr || s.dur_ns > finalize->dur_ns))
            finalize = &s;
    if (finalize == nullptr || finalize->dur_ns == 0) return 0.0;
    const std::uint64_t end = finalize->start_ns + finalize->dur_ns;
    std::uint64_t covered = 0;
    for (const auto& s : spans) {
        if (std::strcmp(s.name, "finalize.prep") != 0 &&
            std::strcmp(s.name, "finalize.routes") != 0)
            continue;
        if (s.start_ns < finalize->start_ns || s.start_ns + s.dur_ns > end) continue;
        covered += s.dur_ns;
    }
    return static_cast<double>(covered) / static_cast<double>(finalize->dur_ns);
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_simcore.json";
    std::string timestamp = "unspecified";
    std::string trace_path = "TRACE_finalize.json";
    std::uint32_t sites = 1000;
    std::uint32_t receivers = 97;  // 1000 x (router + secondary + 97) + 5 = ~99k
    std::uint32_t ab_sites = 100;
    std::uint32_t ab_receivers = 97;
    std::uint32_t full_sites = 2000;
    std::uint32_t full_receivers = 499;  // 2000 x (router + secondary + 499) + 5 > 1M
    // Mode comparison runs at fewer, larger sites: per-site all-pairs cost
    // scales with site size squared while the shared backbone build scales
    // with site count squared, so this is the regime where skipping interior
    // rows (lazy) or building them concurrently (parallel) actually shows.
    std::uint32_t mode_sites = 300;
    std::uint32_t mode_receivers = 346;  // 300 x (router + secondary + 346) + 5 = ~104k
    bool skip_full = false;
    bool full_only = false;
    bool full_dormant = true;
    std::string full_name = "full_protocol";
    std::uint32_t active_per_site = 0;
    unsigned repeat = 1;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::printf("missing value for %s\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--json") == 0) json_path = next("--json");
        else if (std::strcmp(argv[i], "--timestamp") == 0) timestamp = next("--timestamp");
        else if (std::strcmp(argv[i], "--trace") == 0) trace_path = next("--trace");
        else if (std::strcmp(argv[i], "--sites") == 0)
            sites = static_cast<std::uint32_t>(std::atoi(next("--sites")));
        else if (std::strcmp(argv[i], "--receivers") == 0)
            receivers = static_cast<std::uint32_t>(std::atoi(next("--receivers")));
        else if (std::strcmp(argv[i], "--ab-sites") == 0)
            ab_sites = static_cast<std::uint32_t>(std::atoi(next("--ab-sites")));
        else if (std::strcmp(argv[i], "--ab-receivers") == 0)
            ab_receivers = static_cast<std::uint32_t>(std::atoi(next("--ab-receivers")));
        else if (std::strcmp(argv[i], "--full-sites") == 0)
            full_sites = static_cast<std::uint32_t>(std::atoi(next("--full-sites")));
        else if (std::strcmp(argv[i], "--full-receivers") == 0)
            full_receivers =
                static_cast<std::uint32_t>(std::atoi(next("--full-receivers")));
        else if (std::strcmp(argv[i], "--mode-sites") == 0)
            mode_sites = static_cast<std::uint32_t>(std::atoi(next("--mode-sites")));
        else if (std::strcmp(argv[i], "--mode-receivers") == 0)
            mode_receivers =
                static_cast<std::uint32_t>(std::atoi(next("--mode-receivers")));
        else if (std::strcmp(argv[i], "--skip-full") == 0)
            skip_full = true;
        else if (std::strcmp(argv[i], "--full-only") == 0)
            full_only = true;
        else if (std::strcmp(argv[i], "--full-name") == 0)
            full_name = next("--full-name");
        else if (std::strcmp(argv[i], "--full-dormant") == 0)
            full_dormant = std::atoi(next("--full-dormant")) != 0;
        else if (std::strcmp(argv[i], "--active-per-site") == 0)
            active_per_site =
                static_cast<std::uint32_t>(std::atoi(next("--active-per-site")));
        else if (std::strcmp(argv[i], "--repeat") == 0) {
            const int n = std::atoi(next("--repeat"));
            repeat = n > 1 ? static_cast<unsigned>(n) : 1;
        }
    }

    // Min-of-N wall-time estimator: rerun `measure`, keep the run with the
    // smallest finalize time (other fields are identical across runs -- the
    // builds are deterministic).
    const auto min_build = [&](auto&& measure) {
        auto best = measure();
        for (unsigned r = 1; r < repeat; ++r) {
            auto again = measure();
            if (again.finalize_seconds < best.finalize_seconds) best = again;
        }
        return best;
    };

    std::vector<JsonMetric> metrics;

    if (!full_only) {
        title("Hierarchical routing at scale: " + fmt_int(sites) + " sites x " +
              fmt_int(receivers) + " receivers");
        obs::TraceRecorder trace_rec;
        trace_rec.install();
        BuildStats big = run_build(/*flat=*/false, sites, receivers,
                                   /*send_traffic=*/true);
        trace_rec.uninstall();
        // Only the first run is traced; extra --repeat runs refine the
        // min-of-N finalize time.
        for (unsigned r = 1; r < repeat; ++r) {
            const BuildStats again = run_build(/*flat=*/false, sites, receivers,
                                               /*send_traffic=*/true);
            if (again.finalize_seconds < big.finalize_seconds) big = again;
        }
        // The flat matrices would hold n^2 next-hop entries (4B) + n^2 link
        // pointers (8B); computed analytically because at 100k nodes that is
        // ~120 GB and cannot be allocated.
        const double flat_bytes =
            static_cast<double>(big.nodes) * static_cast<double>(big.nodes) * 12.0;
        const double ratio = flat_bytes / static_cast<double>(big.table_bytes);
        const double rss_mib = static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);

        Table table({"nodes", "finalize s", "table MiB", "B/node", "flat MiB", "ratio"});
        table.row({fmt_int(big.nodes), fmt(big.finalize_seconds, 3),
                   fmt(static_cast<double>(big.table_bytes) / (1024.0 * 1024.0), 1),
                   fmt(static_cast<double>(big.table_bytes) / static_cast<double>(big.nodes), 1),
                   fmt(flat_bytes / (1024.0 * 1024.0), 0), fmt(ratio, 0) + "x"});
        note("");
        note("delivered sanity: " + fmt_int(big.delivered) + " packets; peak RSS " +
             fmt(rss_mib, 1) + " MiB");

        metrics.push_back({"routing_scale", "nodes",
                           static_cast<double>(big.nodes), timestamp});
        metrics.push_back(
            {"routing_scale", "finalize_seconds_hier", big.finalize_seconds, timestamp});
        metrics.push_back({"routing_scale", "routing_table_bytes_hier",
                           static_cast<double>(big.table_bytes), timestamp});
        metrics.push_back({"routing_scale", "routing_table_bytes_per_node",
                           static_cast<double>(big.table_bytes) /
                               static_cast<double>(big.nodes),
                           timestamp});
        metrics.push_back(
            {"routing_scale", "routing_table_bytes_flat_computed", flat_bytes, timestamp});
        metrics.push_back({"routing_scale", "flat_to_hier_memory_ratio", ratio, timestamp});
        metrics.push_back({"routing_scale", "peak_rss_bytes",
                           static_cast<double>(peak_rss_bytes()), timestamp});

        if (obs::kTelemetryEnabled) {
            const double coverage = finalize_span_coverage(trace_rec);
            const bool wrote = trace_rec.write_chrome_json(trace_path);
            note("finalize trace: " + fmt_int(trace_rec.spans().size()) + " spans (" +
                 fmt_int(trace_rec.dropped()) + " dropped), phase coverage " +
                 fmt(100.0 * coverage, 1) + "%" +
                 (wrote ? ", written to " + trace_path : " (trace write FAILED)"));
            metrics.push_back(
                {"routing_scale", "finalize_trace_coverage", coverage, timestamp});
            if (coverage < 0.90) {
                note("ERROR: finalize phase spans cover < 90% of finalize wall time");
                return 1;
            }
        } else {
            note("finalize trace: telemetry compiled out (LBRM_NO_TELEMETRY); skipped");
        }

        title("Finalize modes: serial vs parallel vs lazy at " + fmt_int(mode_sites) +
              " sites x " + fmt_int(mode_receivers) + " receivers");
        const ModeStats serial = min_build(
            [&] { return run_mode(SimFinalizeMode::kSerial, 0, mode_sites, mode_receivers); });
        const ModeStats parallel = min_build(
            [&] { return run_mode(SimFinalizeMode::kParallel, 0, mode_sites, mode_receivers); });
        const ModeStats lazy = min_build(
            [&] { return run_mode(SimFinalizeMode::kLazy, 0, mode_sites, mode_receivers); });
        Table modes({"mode", "finalize s", "rows built", "table MiB"});
        auto mode_row = [&](const char* name, const ModeStats& m) {
            modes.row({name, fmt(m.finalize_seconds, 3), fmt_int(m.rows_built),
                       fmt(static_cast<double>(m.table_bytes) / (1024.0 * 1024.0), 1)});
        };
        mode_row("serial", serial);
        mode_row("parallel", parallel);
        mode_row("lazy", lazy);
        const double best =
            parallel.finalize_seconds < lazy.finalize_seconds ? parallel.finalize_seconds
                                                              : lazy.finalize_seconds;
        const double speedup = serial.finalize_seconds / best;
        note("");
        note("best non-serial mode is " + fmt(speedup, 1) + "x faster than serial");

        metrics.push_back({"finalize_modes", "nodes",
                           static_cast<double>(serial.nodes), timestamp});
        metrics.push_back({"finalize_modes", "finalize_seconds_serial",
                           serial.finalize_seconds, timestamp});
        metrics.push_back({"finalize_modes", "finalize_seconds_parallel",
                           parallel.finalize_seconds, timestamp});
        metrics.push_back(
            {"finalize_modes", "finalize_seconds_lazy", lazy.finalize_seconds, timestamp});
        metrics.push_back({"finalize_modes", "rows_built_serial",
                           static_cast<double>(serial.rows_built), timestamp});
        metrics.push_back({"finalize_modes", "rows_built_lazy",
                           static_cast<double>(lazy.rows_built), timestamp});
        metrics.push_back({"finalize_modes", "best_mode_speedup", speedup, timestamp});

        title("Build-mode hash A/B: " + fmt_int(ab_sites) + " sites x " +
              fmt_int(ab_receivers) + " receivers");
        const std::uint64_t h_serial =
            mode_hash(SimFinalizeMode::kSerial, 0, ab_sites, ab_receivers);
        const std::uint64_t h_parallel =
            mode_hash(SimFinalizeMode::kParallel, 2, ab_sites, ab_receivers);
        const std::uint64_t h_lazy =
            mode_hash(SimFinalizeMode::kLazy, 0, ab_sites, ab_receivers);
        const bool hashes_equal = h_serial == h_parallel && h_serial == h_lazy;
        note(std::string("table hashes ") + (hashes_equal ? "match" : "DIFFER") +
             " across serial/parallel/lazy");
        if (!hashes_equal) return 1;
        metrics.push_back(
            {"finalize_modes", "mode_hashes_equal", hashes_equal ? 1.0 : 0.0, timestamp});

        title("Flat vs hierarchical A/B: " + fmt_int(ab_sites) + " sites x " +
              fmt_int(ab_receivers) + " receivers");
        const BuildStats hier = min_build([&] {
            return run_build(/*flat=*/false, ab_sites, ab_receivers,
                             /*send_traffic=*/true);
        });
        const BuildStats flat = min_build([&] {
            return run_build(/*flat=*/true, ab_sites, ab_receivers,
                             /*send_traffic=*/true);
        });
        Table ab({"scheme", "nodes", "finalize s", "table MiB", "delivered"});
        ab.row({"hier", fmt_int(hier.nodes), fmt(hier.finalize_seconds, 3),
                fmt(static_cast<double>(hier.table_bytes) / (1024.0 * 1024.0), 1),
                fmt_int(hier.delivered)});
        ab.row({"flat", fmt_int(flat.nodes), fmt(flat.finalize_seconds, 3),
                fmt(static_cast<double>(flat.table_bytes) / (1024.0 * 1024.0), 1),
                fmt_int(flat.delivered)});
        if (hier.delivered != flat.delivered) {
            note("ERROR: schemes delivered different packet counts");
            return 1;
        }

        metrics.push_back(
            {"routing_ab", "finalize_seconds_hier", hier.finalize_seconds, timestamp});
        metrics.push_back(
            {"routing_ab", "finalize_seconds_flat", flat.finalize_seconds, timestamp});
        metrics.push_back({"routing_ab", "routing_table_bytes_hier",
                           static_cast<double>(hier.table_bytes), timestamp});
        metrics.push_back({"routing_ab", "routing_table_bytes_flat",
                           static_cast<double>(flat.table_bytes), timestamp});

    }  // --full-only skips the routing phases

    if (!skip_full || full_only) {
        title("Full protocol at scale: " + fmt_int(full_sites) + " sites x " +
              fmt_int(full_receivers) + " receivers (lazy finalize, counting observer" +
              (full_dormant ? ", dormant receivers" : "") +
              (active_per_site != 0
                   ? ", " + fmt_int(active_per_site) + " active/site"
                   : "") +
              ")");
        ScenarioConfig cfg;
        cfg.topology = scale_spec(full_sites, full_receivers);
        cfg.sim.finalize_mode = SimFinalizeMode::kLazy;
        cfg.sim.path_cache_capacity = 1u << 16;
        cfg.dormant_receivers = full_dormant;
        cfg.active_receivers_per_site = active_per_site;
        auto counter = std::make_shared<CountingObserver>();
        cfg.observer = counter;

        const auto t_build = std::chrono::steady_clock::now();
        DisScenario scenario{std::move(cfg)};
        const double build_seconds = now_seconds_since(t_build);

        const auto t_traffic = std::chrono::steady_clock::now();
        scenario.start();
        // 400 ms between updates lets each T1 tail drain its ~260 ms wave
        // (499 x 200 B at 1.544 Mb/s) before the next one: peak memory then
        // reflects one in-flight wave, not three stacked ones.
        for (int i = 0; i < 3; ++i) {
            scenario.send_update(200);
            scenario.run_for(millis(400));
        }
        scenario.run_for(secs(0.5));  // heartbeats, stat-acks, idle checks
        const double traffic_seconds = now_seconds_since(t_traffic);

        const std::size_t nodes = scenario.network().node_count();
        const double rss = static_cast<double>(peak_rss_bytes());
        Table full({"nodes", "build s", "traffic s", "deliveries", "rows built",
                    "RSS MiB", "RSS B/node"});
        full.row({fmt_int(nodes), fmt(build_seconds, 1), fmt(traffic_seconds, 1),
                  fmt_int(counter->deliveries()),
                  fmt_int(scenario.network().site_rows_built()),
                  fmt(rss / (1024.0 * 1024.0), 0),
                  fmt(rss / static_cast<double>(nodes), 0)});
        const double delivered_pps =
            traffic_seconds > 0.0
                ? static_cast<double>(counter->deliveries()) / traffic_seconds
                : 0.0;
        note("");
        note("receivers with all 3 updates: " +
             fmt_int(counter->nodes_with_at_least(3)) + " of " +
             fmt_int(static_cast<std::size_t>(full_sites) * full_receivers));
        if (full_dormant)
            note("dormant receivers remaining: " +
                 fmt_int(scenario.dormant_receiver_count()));
        note("delivered pps (wall): " + fmt(delivered_pps, 0));
        if (counter->deliveries() == 0) {
            note("ERROR: full-protocol run delivered nothing");
            return 1;
        }

        metrics.push_back(
            {full_name, "nodes", static_cast<double>(nodes), timestamp});
        metrics.push_back(
            {full_name, "build_seconds", build_seconds, timestamp});
        metrics.push_back(
            {full_name, "traffic_seconds", traffic_seconds, timestamp});
        metrics.push_back({full_name, "deliveries",
                           static_cast<double>(counter->deliveries()), timestamp});
        metrics.push_back(
            {full_name, "delivered_packets_per_sec", delivered_pps, timestamp});
        metrics.push_back({full_name, "peak_rss_bytes", rss, timestamp});
        metrics.push_back({full_name, "rss_bytes_per_node",
                           rss / static_cast<double>(nodes), timestamp});
    }

    write_bench_json(json_path, metrics);
    note("");
    note("JSON written to " + json_path);
    for (const auto& m : metrics) note(json_metric_line(m));
    return 0;
}
