// Ablation bench for the Section 7 design extensions (DESIGN.md calls these
// out as optional features the paper proposes but never built):
//
//   A. recovery machinery: NACK hierarchy (baseline)  vs  dedicated
//      retransmission channel  vs  data-carrying heartbeats;
//      measured on repeated single-site loss events: NACK packets on the
//      wire, repair bytes on the lossy site's tail, mean recovery latency.
//
//   B. logging hierarchy depth: flat (site secondaries -> primary) vs
//      regional tier (site -> region -> primary); measured on whole-region
//      loss: NACKs arriving at the primary logging server.
#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct AblationResult {
    std::uint64_t nacks = 0;          // NACK packets receivers+loggers sent
    std::uint64_t tail_repair_bytes = 0;  // retransmission bytes on the tail
    double mean_recovery_ms = 0;
    std::size_t losses = 0;
};

enum class Mode { kNackHierarchy, kRetransChannel, kDataHeartbeat };

AblationResult run_mode(Mode mode) {
    ScenarioConfig config;
    config.topology.sites = 4;
    config.topology.receivers_per_site = 5;
    config.stat_ack.enabled = false;
    config.use_retrans_channel = mode == Mode::kRetransChannel;
    config.retrans_channel_copies = 5;
    config.heartbeat_carries_small_data = mode == Mode::kDataHeartbeat;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{128});
    scenario.run_for(secs(2.0));
    network.reset_link_stats();

    SampleSet recovery;
    // Ten loss events, rotating across sites.
    for (int event = 0; event < 10; ++event) {
        const auto& site = topo.sites[static_cast<std::size_t>(event) % topo.sites.size()];
        network.set_loss(topo.backbone, site.router, std::make_unique<BernoulliLoss>(1.0));
        scenario.send_update(std::size_t{128});
        const SeqNum seq = scenario.sender().last_seq();
        const TimePoint sent = *scenario.sent_at(seq);
        scenario.run_for(millis(50));
        network.set_loss(topo.backbone, site.router, std::make_unique<BernoulliLoss>(0.0));
        scenario.run_for(secs(6.0));

        for (NodeId r : site.receivers) {
            const auto times = scenario.delivery_times(seq);
            if (auto it = times.find(r); it != times.end())
                recovery.add(to_seconds(it->second - sent) * 1000.0);
        }
    }

    AblationResult result;
    for (NodeId r : topo.all_receivers()) result.nacks += scenario.receiver(r).nacks_sent();
    for (std::size_t s = 0; s < topo.sites.size(); ++s)
        result.nacks += scenario.secondary_logger(s).upstream_fetches();
    for (const auto& site : topo.sites) {
        const auto& stats = network.link(topo.backbone, site.router)->stats();
        result.tail_repair_bytes += stats.packets_of(PacketType::kRetransmission);
    }
    result.mean_recovery_ms = recovery.mean();
    result.losses = recovery.count();
    return result;
}

std::uint64_t run_hierarchy(bool regional, std::uint32_t sites) {
    ScenarioConfig config;
    config.topology.sites = sites;
    config.topology.receivers_per_site = 3;
    config.topology.sites_per_region = sites / 2;  // two regions
    config.use_regional_loggers = regional;
    config.stat_ack.enabled = false;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.send_update(std::size_t{128});
    scenario.run_for(secs(2.0));
    const std::uint64_t before = scenario.primary_logger().nacks_received();

    network.set_loss(topo.backbone, topo.regions[0].router,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{128});
    scenario.run_for(millis(50));
    network.set_loss(topo.backbone, topo.regions[0].router,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(8.0));
    return scenario.primary_logger().nacks_received() - before;
}

const char* mode_name(Mode m) {
    switch (m) {
        case Mode::kNackHierarchy: return "nack";
        case Mode::kRetransChannel: return "retx-chan";
        case Mode::kDataHeartbeat: return "data-hb";
    }
    return "?";
}

}  // namespace

int main() {
    title("Ablation: Section 7 extensions vs the baseline protocol");

    note("--- A. recovery machinery (10 single-site loss events) ---");
    {
        Table table({"mode", "NACK pkts", "tail repairs", "recover ms", "repaired"});
        for (Mode mode : {Mode::kNackHierarchy, Mode::kRetransChannel,
                          Mode::kDataHeartbeat}) {
            const AblationResult r = run_mode(mode);
            table.row({mode_name(mode), fmt_int(r.nacks), fmt_int(r.tail_repair_bytes),
                       fmt(r.mean_recovery_ms, 1), fmt_int(r.losses)});
        }
        note("");
        note("Expected shape: the retransmission channel and data-carrying");
        note("heartbeats both eliminate NACKs for transient loss; the channel");
        note("pays extra multicast copies, the data-heartbeat repairs at the");
        note("heartbeat cadence (only viable for small payloads).");
    }

    note("");
    note("--- B. logging hierarchy depth (whole-region loss) ---");
    {
        Table table({"sites", "flat NACKs", "3-level NACKs"});
        for (std::uint32_t sites : {6u, 10u, 20u}) {
            table.row({fmt_int(sites), fmt_int(run_hierarchy(false, sites)),
                       fmt_int(run_hierarchy(true, sites))});
        }
        note("");
        note("Expected shape: flat logging sends one NACK per affected site to");
        note("the primary; the regional tier collapses them to one per region");
        note("(Section 7: 'a multi-level hierarchy of logging servers may be");
        note("used to further reduce NACK bandwidth in large groups').");
    }
    return 0;
}
