// Section 2.2.2 (a): distributed logging cuts NACK traffic across the tail
// circuit and the WAN from one-per-receiver to one-per-site.
//
// Experiment: the paper's canonical configuration (50 sites x 20 receivers);
// one data packet is lost on a single site's inbound tail circuit.  We count
// NACK packets crossing that tail circuit and NACKs arriving at the primary
// logging server, with and without secondary loggers.  Then the whole-group
// variant: the packet is lost on the source's uplink, so every site misses
// it (paper: primary NACK load drops from 1000 to 50).
#include "bench/bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct Result {
    std::uint64_t nacks_on_tail = 0;
    std::uint64_t nacks_at_primary = 0;
    std::size_t recovered = 0;
};

Result run(bool distributed, bool whole_group_loss) {
    ScenarioConfig config;
    config.topology.sites = 50;
    config.topology.receivers_per_site = 20;
    config.stat_ack.enabled = false;  // isolate the NACK path
    config.use_secondary_loggers = distributed;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();

    scenario.send_update(std::size_t{128});
    scenario.run_for(secs(2.0));
    network.reset_link_stats();
    const std::uint64_t primary_nacks_before = scenario.primary_logger().nacks_received();

    // Lose the next packet.
    const NodeId from = whole_group_loss ? topo.source_router : topo.backbone;
    const NodeId to = whole_group_loss ? topo.backbone : topo.sites[0].router;
    network.set_loss(from, to, std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{128});
    scenario.run_for(millis(50));
    network.set_loss(from, to, std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(8.0));

    Result result;
    // NACKs that crossed site 0's tail circuit toward the WAN.
    result.nacks_on_tail = network.link(topo.sites[0].router, topo.backbone)
                               ->stats().packets_of(PacketType::kNack);
    result.nacks_at_primary =
        scenario.primary_logger().nacks_received() - primary_nacks_before;
    result.recovered = scenario.delivery_times(scenario.sender().last_seq()).size();
    return result;
}

}  // namespace

int main() {
    title("Section 2.2.2: NACK reduction from distributed logging");
    note("Topology: 50 sites x 20 receivers (the paper's 1000-subscriber group)");
    note("");

    note("--- single-site loss (tail circuit of site 0 drops one packet) ---");
    {
        Table table({"logging", "NACKs on tail", "NACKs at prim", "recovered"});
        const Result central = run(/*distributed=*/false, /*whole_group=*/false);
        const Result dist = run(/*distributed=*/true, /*whole_group=*/false);
        table.row({"centralized", fmt_int(central.nacks_on_tail),
                   fmt_int(central.nacks_at_primary), fmt_int(central.recovered)});
        table.row({"distributed", fmt_int(dist.nacks_on_tail),
                   fmt_int(dist.nacks_at_primary), fmt_int(dist.recovered)});
        note("");
        note("Paper: 20 NACKs across the tail circuit -> 1 (one per site).");
        note("");
    }

    note("--- whole-group loss (source uplink drops one packet) ---");
    {
        Table table({"logging", "NACKs at prim", "recovered"});
        const Result central = run(false, true);
        const Result dist = run(true, true);
        table.row({"centralized", fmt_int(central.nacks_at_primary),
                   fmt_int(central.recovered)});
        table.row({"distributed", fmt_int(dist.nacks_at_primary),
                   fmt_int(dist.recovered)});
        note("");
        note("Paper: primary logging server load falls from one NACK per");
        note("receiver (1000) to one per site (50).");
    }
    return 0;
}
