// Figure 5: Overhead(fixed) / Overhead(variable) as a function of the data
// packet interval dt, with the paper's marked point at dt = 120 s (the DIS
// terrain scenario), where the variable heartbeat reduces heartbeat
// bandwidth by a factor of ~53.
#include "analysis/heartbeat_math.hpp"
#include "bench/bench_util.hpp"

int main() {
    using namespace lbrm;
    using namespace lbrm::bench;

    HeartbeatConfig config;  // paper defaults

    title("Figure 5: Overhead(Fixed)/Overhead(Variable) vs dt");
    note("h_min = 0.25 s, h_max = 32 s, backoff = 2");
    note("");

    Table table({"dt (s)", "ratio", "ratio (cont.)"});
    std::vector<std::string> csv;
    for (double dt : {0.3, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 90.0, 120.0,
                      200.0, 500.0, 1000.0}) {
        const double discrete = analysis::overhead_ratio(config, dt);
        const double continuous = analysis::overhead_ratio_continuous(config, dt);
        table.row({fmt(dt, 1), fmt(discrete, 1), fmt(continuous, 1)});
        csv.push_back(fmt(dt, 2) + "," + fmt(discrete, 3) + "," + fmt(continuous, 3));
    }

    note("");
    const double marked = analysis::overhead_ratio(config, 120.0);
    note("Marked point (DIS scenario, dt = 120 s):");
    note("  measured ratio = " + fmt(marked, 1) + "x   (paper: 53.4x)");

    note("");
    note("CSV: dt,ratio_discrete,ratio_continuous");
    for (const auto& line : csv) note(line);

    note("");
    note("Expected shape (paper): ratio grows with dt as variable heartbeats");
    note("thin out exponentially while the fixed scheme keeps emitting 4/s.");
    return 0;
}
