// Protocol-health telemetry bench (observability, not a paper artifact).
//
// Drives the ISSUE-1 reference topology (20 sites x 50 receivers) with
// random loss on the site feeds, samples the metrics registry every 100 ms
// of sim time through DisScenario::start_sampling, and exports the
// resulting curves -- delivered pps, heartbeat bandwidth, NACK/repair rate,
// drop breakdown -- as BENCH_protocol_health.json (the sampler's own JSON
// schema; the protocol-health counterpart to the paper's Figures 4/5/8).
// Headline totals also land in BENCH_simcore.json for the perf trajectory.
//
// --hash-only mode prints one line -- an FNV-1a hash over the complete
// link-level packet trace (time, link endpoints, outcome, encoded bytes)
// -- and nothing else.  CI runs it against both a normal build and a
// -DLBRM_NO_TELEMETRY=ON build and asserts the hashes match: telemetry,
// including live sampling, must never feed back into protocol behavior.
//
// Usage:
//   bench_protocol_health [--json PATH] [--health-json PATH]
//                         [--timestamp ISO8601] [--updates N] [--loss P]
//                         [--interval-ms N] [--hash-only]
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/loss_model.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct Fnv1a {
    std::uint64_t h = 14695981039346656037ULL;
    void feed(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ULL;
        }
    }
    template <typename T>
    void feed_value(T v) {
        feed(&v, sizeof v);
    }
};

ScenarioConfig health_config() {
    ScenarioConfig config;
    config.topology.sites = 20;
    config.topology.receivers_per_site = 50;
    config.sim.tree_cache_capacity = 64;
    return config;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_simcore.json";
    std::string health_path = "BENCH_protocol_health.json";
    std::string timestamp = "unspecified";
    std::uint64_t updates = 200;
    double loss = 0.02;
    std::uint64_t interval_ms = 100;
    bool hash_only = false;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::printf("missing value for %s\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--json") == 0) json_path = next("--json");
        else if (std::strcmp(argv[i], "--health-json") == 0)
            health_path = next("--health-json");
        else if (std::strcmp(argv[i], "--timestamp") == 0) timestamp = next("--timestamp");
        else if (std::strcmp(argv[i], "--updates") == 0)
            updates = static_cast<std::uint64_t>(std::atoll(next("--updates")));
        else if (std::strcmp(argv[i], "--loss") == 0) loss = std::atof(next("--loss"));
        else if (std::strcmp(argv[i], "--interval-ms") == 0)
            interval_ms = static_cast<std::uint64_t>(std::atoll(next("--interval-ms")));
        else if (std::strcmp(argv[i], "--hash-only") == 0)
            hash_only = true;
    }

    DisScenario scenario{health_config()};
    Network& net = scenario.network();
    const DisTopology& topo = scenario.topology();

    // Loss on every backbone -> site-router feed: each site independently
    // misses slices of the stream, exercising NACKs, secondary-logger
    // repairs and (at this rate) the occasional upstream fetch.
    for (const auto& site : topo.sites)
        net.set_loss(topo.backbone, site.router, std::make_unique<BernoulliLoss>(loss));

    Fnv1a trace_hash;
    net.set_tap([&](TimePoint at, const Link& link, const Packet& packet,
                    bool delivered) {
        trace_hash.feed_value(at.time_since_epoch().count());
        trace_hash.feed_value(link.from().value());
        trace_hash.feed_value(link.to().value());
        trace_hash.feed_value(static_cast<std::uint8_t>(delivered));
        const auto bytes = encode(packet);
        trace_hash.feed(bytes.data(), bytes.size());
    });

    const auto wall0 = std::chrono::steady_clock::now();
    scenario.start();
    scenario.start_sampling(millis(static_cast<std::int64_t>(interval_ms)));
    for (std::uint64_t i = 0; i < updates; ++i) {
        scenario.send_update(200);
        scenario.run_for(millis(20));
    }
    scenario.run_for(secs(2.0));  // recovery tail: NACKs, repairs, heartbeats
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

    if (hash_only) {
        // The one line CI diffs across telemetry-on / compiled-out builds.
        std::printf("%016llx\n", static_cast<unsigned long long>(trace_hash.h));
        return 0;
    }

    obs::Metrics& m = scenario.metrics();
    const auto count = [&](const char* name) { return m.value(name); };
    const Network::DropBreakdown drops = net.drop_breakdown();

    title("Protocol health: 20 sites x 50 receivers, " + fmt_int(updates) +
          " updates at " + fmt(loss * 100.0, 1) + "% site-feed loss");
    Table table({"metric", "value"});
    table.row({"delivered", fmt_int(count("proto.receiver.delivered"))});
    table.row({"recovered", fmt_int(count("proto.receiver.recovered"))});
    table.row({"nacks_sent", fmt_int(count("proto.receiver.nacks_sent"))});
    table.row({"heartbeats", fmt_int(count("proto.sender.heartbeats_sent"))});
    table.row({"served_mcast", fmt_int(count("proto.logger.served_multicast"))});
    table.row({"served_ucast", fmt_int(count("proto.logger.served_unicast"))});
    table.row({"upstream_fetch", fmt_int(count("proto.logger.upstream_fetches"))});
    table.row({"drops_loss", fmt_int(drops.loss)});
    table.row({"drops_queue", fmt_int(drops.queue)});
    note("");
    note("trace hash: " + [&] {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(trace_hash.h));
        return std::string(buf);
    }());
    note("sampler rows: " + fmt_int(scenario.sampler().rows()) + " at " +
         fmt_int(interval_ms) + " ms sim cadence; wall " + fmt(wall_seconds, 2) + " s");

    if (obs::kTelemetryEnabled && count("proto.receiver.delivered") == 0) {
        note("ERROR: telemetry enabled but no deliveries counted");
        return 1;
    }
    if (scenario.sampler().rows() == 0) {
        note("ERROR: sampler recorded no rows");
        return 1;
    }

    if (!scenario.sampler().write_json(health_path)) {
        note("ERROR: could not write " + health_path);
        return 1;
    }
    note("health series written to " + health_path);

    std::vector<JsonMetric> metrics;
    metrics.push_back({"protocol_health", "delivered",
                       static_cast<double>(count("proto.receiver.delivered")),
                       timestamp});
    metrics.push_back({"protocol_health", "nacks_sent",
                       static_cast<double>(count("proto.receiver.nacks_sent")),
                       timestamp});
    metrics.push_back({"protocol_health", "recovered",
                       static_cast<double>(count("proto.receiver.recovered")),
                       timestamp});
    metrics.push_back({"protocol_health", "drops_total",
                       static_cast<double>(drops.total()), timestamp});
    metrics.push_back({"protocol_health", "wall_seconds", wall_seconds, timestamp});
    write_bench_json(json_path, metrics);
    note("JSON written to " + json_path);
    for (const auto& mt : metrics) note(json_metric_line(mt));
    return 0;
}
