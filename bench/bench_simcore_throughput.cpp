// Simulator-core throughput bench (perf trajectory, not a paper artifact).
//
// Drives the raw simulation substrate -- multicast tree construction, link
// transmission, event queue -- with the protocol stack removed, on the
// ISSUE-1 reference scenario: 20 sites x 50 receivers = 1,000 receivers
// behind tail circuits.  Reports wall-clock events/sec and delivered
// data-packets/sec, both to stdout and as machine-readable JSON
// (BENCH_simcore.json) so the numbers can be compared across PRs.
//
// Usage:
//   bench_simcore_throughput [--json PATH] [--timestamp ISO8601]
//                            [--baseline-pps N] [--packets N] [--repeat N]
//
// --repeat reports the fastest of N measured runs (min-of-N, the usual
// defense against scheduler noise -- the telemetry-overhead A/B in CI
// compares min-of-3 across two builds).
//
// --baseline-pps records a previously measured pre-change number alongside
// the current run (the ISSUE-1 acceptance criterion wants both in one file).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct RunResult {
    double wall_seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t delivered = 0;
};

/// Multicast `packets` data packets from the source to a 1,000-receiver
/// group and drain the network.  Delivered = data copies arriving on the
/// receivers' LAN links (one per member per send when nothing drops).
RunResult run_multicast(std::uint64_t packets) {
    Simulator simulator;
    Network net{simulator, 42};
    DisTopologySpec spec;
    spec.sites = 20;
    spec.receivers_per_site = 50;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    const GroupId group{1};
    for (NodeId r : topo.all_receivers()) net.join(group, r);

    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < packets; ++i) {
        net.multicast(topo.source,
                      Packet{Header{group, topo.source, topo.source},
                             DataBody{SeqNum{static_cast<std::uint32_t>(i + 1)},
                                      EpochId{0},
                                      std::vector<std::uint8_t>(128, 0xAB)}},
                      McastScope::kGlobal);
        // Space sends 10 ms apart so tail-circuit queues drain between
        // rounds (we are measuring simulator overhead, not drop-tail).
        simulator.run_for(millis(10));
    }
    simulator.run_for(secs(1.0));
    const auto stop = std::chrono::steady_clock::now();

    RunResult out;
    out.wall_seconds = std::chrono::duration<double>(stop - start).count();
    out.events = simulator.events_processed();
    for (const auto& site : topo.sites)
        for (NodeId r : site.receivers)
            out.delivered += net.link(site.router, r)->stats().packets_of(PacketType::kData);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_simcore.json";
    std::string timestamp = "unspecified";
    double baseline_pps = 0.0;
    std::uint64_t packets = 500;
    std::uint64_t repeat = 1;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::printf("missing value for %s\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--json") == 0) json_path = next("--json");
        else if (std::strcmp(argv[i], "--timestamp") == 0) timestamp = next("--timestamp");
        else if (std::strcmp(argv[i], "--baseline-pps") == 0)
            baseline_pps = std::atof(next("--baseline-pps"));
        else if (std::strcmp(argv[i], "--packets") == 0)
            packets = static_cast<std::uint64_t>(std::atoll(next("--packets")));
        else if (std::strcmp(argv[i], "--repeat") == 0)
            repeat = static_cast<std::uint64_t>(std::atoll(next("--repeat")));
    }
    if (repeat == 0) repeat = 1;

    title("Simulator-core throughput: 20 sites x 50 receivers, global multicast");

    // Warm-up run (touches allocator, page cache) then the measured runs.
    run_multicast(packets / 10 + 1);
    RunResult r = run_multicast(packets);
    for (std::uint64_t i = 1; i < repeat; ++i) {
        const RunResult again = run_multicast(packets);
        if (again.wall_seconds < r.wall_seconds) r = again;
    }

    const double events_per_sec = static_cast<double>(r.events) / r.wall_seconds;
    const double delivered_pps = static_cast<double>(r.delivered) / r.wall_seconds;

    Table table({"packets", "delivered", "events", "wall s", "events/s", "delivered/s"});
    table.row({fmt_int(packets), fmt_int(r.delivered), fmt_int(r.events),
               fmt(r.wall_seconds, 3), fmt(events_per_sec, 0), fmt(delivered_pps, 0)});

    std::vector<JsonMetric> metrics{
        {"simcore_multicast_20x50", "events_per_sec", events_per_sec, timestamp},
        {"simcore_multicast_20x50", "delivered_packets_per_sec", delivered_pps, timestamp},
    };
    if (baseline_pps > 0.0) {
        metrics.push_back({"simcore_multicast_20x50",
                           "delivered_packets_per_sec_baseline", baseline_pps, timestamp});
        note("");
        note("speedup vs baseline: " + fmt(delivered_pps / baseline_pps, 2) + "x");
    }
    write_bench_json(json_path, metrics);

    note("");
    note("JSON written to " + json_path);
    for (const auto& m : metrics) note(json_metric_line(m));
    return 0;
}
