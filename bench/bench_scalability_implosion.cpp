// Section 2.3.4 / Section 1: feedback implosion at the source as the group
// grows.
//
// Compares, after one whole-group packet loss, the number of feedback
// packets (ACKs + NACKs) arriving at the source's site across group sizes:
//   * positive-ACK sender-reliable baseline: one ACK per receiver per packet
//     (plus retransmissions) -- the implosion Section 1 rejects;
//   * LBRM with distributed logging + statistical acking: ~k ACKs per
//     packet and one NACK per site, independent of receivers per site.
#include "baseline/ack_protocol.hpp"
#include "bench/bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

/// Feedback packets crossing the source site's uplink (toward the source).
std::uint64_t source_feedback(Network& net, const DisTopology& topo) {
    const auto& stats = net.link(topo.backbone, topo.source_router)->stats();
    return stats.packets_of(PacketType::kAck) + stats.packets_of(PacketType::kNack) +
           stats.packets_of(PacketType::kAckerResponse) +
           stats.packets_of(PacketType::kProbeReply);
}

std::uint64_t run_lbrm(std::uint32_t sites) {
    ScenarioConfig config;
    config.topology.sites = sites;
    config.topology.receivers_per_site = 4;
    config.stat_ack.enabled = true;
    config.stat_ack.k = 10;
    config.stat_ack.initial_probe_p = 0.1;
    DisScenario scenario(config);
    auto& network = scenario.network();
    const auto& topo = scenario.topology();
    scenario.start();
    scenario.run_for(secs(5.0));
    network.reset_link_stats();

    // One data packet that every site loses.
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(1.0));
    scenario.send_update(std::size_t{128});
    scenario.run_for(millis(30));
    network.set_loss(topo.source_router, topo.backbone,
                     std::make_unique<BernoulliLoss>(0.0));
    scenario.run_for(secs(10.0));
    return source_feedback(network, topo);
}

std::uint64_t run_positive_ack(std::uint32_t sites) {
    Simulator simulator;
    Network net{simulator, 7};
    DisTopologySpec spec;
    spec.sites = sites;
    spec.receivers_per_site = 4;
    spec.secondary_logger_per_site = false;
    spec.replicas = 0;
    const DisTopology topo = make_dis_topology(net, spec);
    net.finalize();

    const GroupId group{1};
    baseline::AckProtocolConfig base;
    base.group = group;
    base.source = topo.source;

    baseline::AckProtocolConfig sender_config = base;
    sender_config.self = topo.source;
    sender_config.receivers = topo.all_receivers();
    auto& source_host = net.attach_host(topo.source);
    auto& sender = dynamic_cast<baseline::AckSenderCore&>(source_host.protocol().add_core(
        std::make_unique<baseline::AckSenderCore>(sender_config)));
    net.join(group, topo.source);

    for (NodeId r : topo.all_receivers()) {
        baseline::AckProtocolConfig receiver_config = base;
        receiver_config.self = r;
        net.attach_host(r).protocol().add_core(
            std::make_unique<baseline::AckReceiverCore>(receiver_config));
        net.join(group, r);
        net.host(r)->protocol().start(simulator.now());
    }
    source_host.protocol().start(simulator.now());

    auto send = [&](std::vector<std::uint8_t> payload) {
        Actions actions = sender.send(simulator.now(), std::move(payload));
        source_host.protocol().inject(simulator.now(), sender, std::move(actions));
    };

    send(std::vector<std::uint8_t>(128, 1));
    simulator.run_for(secs(2.0));
    net.reset_link_stats();

    net.set_loss(topo.source_router, topo.backbone, std::make_unique<BernoulliLoss>(1.0));
    send(std::vector<std::uint8_t>(128, 2));
    simulator.run_for(millis(30));
    net.set_loss(topo.source_router, topo.backbone, std::make_unique<BernoulliLoss>(0.0));
    simulator.run_for(secs(10.0));
    return source_feedback(net, topo);
}

}  // namespace

int main() {
    title("Section 2.3.4: feedback implosion at the source vs group size");
    note("One whole-group loss; feedback = ACK/NACK packets reaching the");
    note("source's site afterwards.  4 receivers per site.");
    note("");

    Table table({"sites", "recv", "pos-ACK fb", "LBRM fb"});
    std::vector<std::string> csv;
    for (std::uint32_t sites : {10u, 25u, 50u, 100u, 200u}) {
        const std::uint64_t ack = run_positive_ack(sites);
        const std::uint64_t lbrm = run_lbrm(sites);
        table.row({fmt_int(sites), fmt_int(sites * 4), fmt_int(ack), fmt_int(lbrm)});
        csv.push_back(fmt_int(sites) + "," + fmt_int(ack) + "," + fmt_int(lbrm));
    }

    note("");
    note("CSV: sites,positive_ack_feedback,lbrm_feedback");
    for (const auto& line : csv) note(line);

    note("");
    note("Expected shape (paper): positive acknowledgement grows with the");
    note("receiver count (implosion); LBRM feedback stays ~k ACKs + <=1 NACK");
    note("per site, 'preventing every logging server from simultaneously");
    note("requesting retransmissions from the sender'.");
    return 0;
}
