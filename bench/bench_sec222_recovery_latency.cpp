// Section 2.2.2 (b): recovery latency through the logging hierarchy.
//
// "A secondary logging server ... might typically be at a distance of 3-4
// milliseconds RTT ... while a primary logging server located 1,500 miles
// away ... at a distance of 80 milliseconds RTT.  By getting a
// retransmission from the local logging server, we can reduce the
// retransmission latency by an order of magnitude."
//
// Experiment: one receiver loses a packet on its own LAN drop (the site's
// secondary logger has it).  We decompose recovery into
//   detection  (wait for the heartbeat that reveals the gap -- dominated by
//               h_min, as Section 3 notes), and
//   retrieval  (NACK out -> retransmission in), the quantity the paper's
//               RTT argument is about,
// under distributed logging (local secondary) vs centralized logging
// (primary across the WAN).
#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct Result {
    double detect_mean = 0;    // send -> loss detected
    double retrieve_mean = 0;  // loss detected -> recovered delivery
    double total_mean = 0;
    int samples = 0;
};

Result run(bool distributed, int trials) {
    Result out;
    SampleSet detect, retrieve, total;

    for (int trial = 0; trial < trials; ++trial) {
        ScenarioConfig config;
        config.topology.sites = 3;
        config.topology.receivers_per_site = 4;
        config.stat_ack.enabled = false;
        config.use_secondary_loggers = distributed;
        config.seed = 1000 + static_cast<std::uint64_t>(trial);
        // Keep the deliberate reorder-wait before NACKing small: this bench
        // isolates the logging-hierarchy RTT, not the batching delay.
        config.receiver_defaults.nack_delay_min = millis(1);
        config.receiver_defaults.nack_delay_max = millis(2);
        DisScenario scenario(config);
        auto& network = scenario.network();
        const auto& topo = scenario.topology();
        scenario.start();
        scenario.send_update(std::size_t{128});
        scenario.run_for(secs(2.0));

        // Lose the next packet on ONE receiver's LAN drop only: the rest of
        // the site (including the secondary logger) receives it.
        const NodeId victim = topo.sites[0].receivers[0];
        network.set_loss(topo.sites[0].router, victim,
                         std::make_unique<BernoulliLoss>(1.0));
        scenario.send_update(std::size_t{128});
        const SeqNum seq = scenario.sender().last_seq();
        const TimePoint sent = *scenario.sent_at(seq);
        scenario.run_for(millis(50));
        network.set_loss(topo.sites[0].router, victim,
                         std::make_unique<BernoulliLoss>(0.0));
        scenario.run_for(secs(5.0));

        std::optional<TimePoint> detected;
        for (const auto& n : scenario.notices())
            if (n.node == victim && n.kind == NoticeKind::kLossDetected &&
                n.arg == seq.value())
                detected = n.at;
        std::optional<TimePoint> recovered;
        for (const auto& d : scenario.deliveries())
            if (d.node == victim && d.seq == seq) recovered = d.at;

        if (detected && recovered) {
            detect.add(to_seconds(*detected - sent));
            retrieve.add(to_seconds(*recovered - *detected));
            total.add(to_seconds(*recovered - sent));
        }
    }

    out.detect_mean = detect.mean();
    out.retrieve_mean = retrieve.mean();
    out.total_mean = total.mean();
    out.samples = static_cast<int>(detect.count());
    return out;
}

}  // namespace

int main() {
    title("Section 2.2.2: recovery latency, local secondary vs remote primary");
    note("One receiver loses a packet on its LAN drop; the rest of its site");
    note("has it.  Retrieval = NACK -> retransmission (the paper's RTT claim).");
    note("");

    const Result local = run(/*distributed=*/true, 10);
    const Result remote = run(/*distributed=*/false, 10);

    Table table({"logging", "detect (ms)", "retrieve (ms)", "total (ms)"});
    table.row({"distributed", fmt(local.detect_mean * 1000, 1),
               fmt(local.retrieve_mean * 1000, 1), fmt(local.total_mean * 1000, 1)});
    table.row({"centralized", fmt(remote.detect_mean * 1000, 1),
               fmt(remote.retrieve_mean * 1000, 1), fmt(remote.total_mean * 1000, 1)});

    note("");
    note("speedup (retrieval): " +
         fmt(remote.retrieve_mean / local.retrieve_mean, 1) + "x");
    note("");
    note("Expected shape (paper): local retrieval ~3-4 ms RTT vs ~80 ms RTT");
    note("via the remote primary -- an order of magnitude.  Detection time");
    note("(~h_min = 250 ms) dominates the total either way, exactly as the");
    note("paper's Section 3 measurement discussion concludes.");
    return 0;
}
