// Link burst-batching bench (perf trajectory, not a paper artifact).
//
// Measures the tentpole of this PR: when a burst hits a busy link, arrival
// events are parked in a per-link FIFO drained by one recurring event
// instead of taking a slab slot + heap entry each (see DESIGN.md "Link
// burst batching").  Two scenarios where the event queue is the bottleneck:
//
//   burst_20site   -- the ISSUE-1 reference topology (20 sites x 50
//                     receivers behind T1 tails), hit with back-to-back
//                     bursts from the source.  Every tail circuit queues
//                     hundreds of packets deep.
//   multi_group    -- thousands of multicast groups sharing the topology,
//                     one packet per group fired back-to-back; stresses the
//                     per-group tree cache plus the shared-link queues.
//
// Each scenario runs batched (default) and unbatched
// (Network::set_batching(false), same as LBRM_SIM_NO_BATCH), and reports
// delivered data-packets per wall-second plus heap-scheduled events per
// delivered packet.  Tail drop-tail is disabled so both runs deliver the
// identical packet set and the comparison is pure event-queue cost.
//
// Each mode is run `--repeat` times and the fastest run is reported
// (min-of-N, the usual defense against scheduler noise on a shared box).
//
// Usage:
//   bench_burst_batching [--json PATH] [--timestamp ISO8601]
//                        [--bursts N] [--burst-size N] [--groups N]
//                        [--rounds N] [--repeat N]
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "bench/bench_util.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace {

using namespace lbrm;
using namespace lbrm::bench;
using namespace lbrm::sim;

struct RunStats {
    double wall_seconds = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t heap_schedules = 0;  ///< slab-backed EventQueue::schedule calls
    std::uint64_t events = 0;
    std::uint64_t tree_builds = 0;       ///< delivery-tree constructions
    double tree_build_seconds = 0.0;     ///< wall time spent building trees
    std::size_t tree_cache_bytes = 0;    ///< tree-cache heap at end of run
    Network::DropBreakdown drops;        ///< queue-overflow vs random-loss drops

    [[nodiscard]] double delivered_pps() const {
        return static_cast<double>(delivered) / wall_seconds;
    }
    [[nodiscard]] double schedules_per_delivered() const {
        return static_cast<double>(heap_schedules) / static_cast<double>(delivered);
    }
};

DisTopologySpec bench_spec(std::uint32_t receivers_per_site) {
    DisTopologySpec spec;
    spec.sites = 20;
    spec.receivers_per_site = receivers_per_site;
    // Infinite upstream bandwidth so the burst reaches the fan-out hops
    // intact: the interesting event-queue load is the per-receiver LAN
    // links, of which there are a thousand, each queueing the whole burst.
    // (With T1 tails the tail serialization paces packets out one by one
    // and the downstream links never see a burst at all.)
    spec.backbone_bandwidth_bps = 0.0;
    spec.tail_bandwidth_bps = 0.0;
    // Unlimited queueing: both runs deliver every packet, so delivered-pps
    // compares equal work.  (Drop decisions are identical anyway -- the
    // batching A/B test pins that -- but drops would shrink the workload.)
    spec.tail_queue_limit = Duration::zero();
    return spec;
}

std::uint64_t delivered_data(const Network& net, const DisTopology& topo) {
    std::uint64_t delivered = 0;
    for (const auto& site : topo.sites)
        for (NodeId r : site.receivers)
            delivered += net.link(site.router, r)->stats().packets_of(PacketType::kData);
    return delivered;
}

/// `bursts` rounds of `burst_size` back-to-back sends to one 1,000-receiver
/// group, draining between rounds.
RunStats run_burst(bool batching, std::uint64_t bursts, std::uint64_t burst_size) {
    Simulator simulator;
    Network net{simulator, 42};
    net.set_batching(batching);
    const DisTopology topo = make_dis_topology(net, bench_spec(50));
    net.finalize();

    const GroupId group{1};
    for (NodeId r : topo.all_receivers()) net.join(group, r);

    const auto start = std::chrono::steady_clock::now();
    std::uint32_t seq = 0;
    for (std::uint64_t round = 0; round < bursts; ++round) {
        // Root the tree at the backbone: the source's own access link would
        // pace the burst out at exactly one LAN serialization time per
        // packet, and no downstream queue would ever form.
        for (std::uint64_t i = 0; i < burst_size; ++i)
            net.multicast(topo.backbone,
                          Packet{Header{group, topo.source, topo.source},
                                 DataBody{SeqNum{++seq}, EpochId{0},
                                          std::vector<std::uint8_t>(128, 0xAB)}},
                          McastScope::kGlobal);
        simulator.run_for(secs(5.0));  // drain the queues completely
    }
    const auto stop = std::chrono::steady_clock::now();

    RunStats out;
    out.wall_seconds = std::chrono::duration<double>(stop - start).count();
    out.delivered = delivered_data(net, topo);
    out.heap_schedules = simulator.events_scheduled();
    out.events = simulator.events_processed();
    out.drops = net.drop_breakdown();
    return out;
}

/// One packet per group fired back-to-back, `groups` groups round-robined
/// across the 20 sites (each group = that site's receivers).  Several
/// rounds, so the one-time tree-construction cost of the first round is
/// amortized and the steady-state cost under test is the event queue.
RunStats run_multi_group(bool batching, std::uint64_t groups, std::uint64_t rounds,
                         std::size_t tree_cache_cap) {
    Simulator simulator;
    SimConfig sim_config;
    sim_config.tree_cache_capacity = tree_cache_cap;
    Network net{simulator, 42, sim_config};
    net.set_batching(batching);
    const DisTopology topo = make_dis_topology(net, bench_spec(10));
    net.finalize();

    for (std::uint64_t g = 0; g < groups; ++g) {
        const auto& site = topo.sites[g % topo.sites.size()];
        for (NodeId r : site.receivers)
            net.join(GroupId{static_cast<std::uint32_t>(g + 1)}, r);
    }

    const auto start = std::chrono::steady_clock::now();
    std::uint32_t seq = 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
        for (std::uint64_t g = 0; g < groups; ++g)
            net.multicast(topo.backbone,
                          Packet{Header{GroupId{static_cast<std::uint32_t>(g + 1)},
                                        topo.source, topo.source},
                                 DataBody{SeqNum{++seq}, EpochId{0},
                                          std::vector<std::uint8_t>(128, 0xCD)}},
                          McastScope::kGlobal);
        simulator.run_for(secs(10.0));
    }
    const auto stop = std::chrono::steady_clock::now();

    RunStats out;
    out.wall_seconds = std::chrono::duration<double>(stop - start).count();
    out.delivered = delivered_data(net, topo);
    out.heap_schedules = simulator.events_scheduled();
    out.events = simulator.events_processed();
    out.tree_builds = net.tree_builds();
    out.tree_build_seconds = net.tree_build_seconds();
    out.tree_cache_bytes = net.tree_cache_bytes();
    out.drops = net.drop_breakdown();
    return out;
}

/// Run batched and unbatched interleaved `repeat` times and keep the
/// fastest of each (counters are identical across repeats; only wall time
/// varies).  Interleaving means background-load phases on a shared box hit
/// both modes instead of biasing whichever ran during the quiet window.
template <typename RunFn>
std::pair<RunStats, RunStats> best_of_interleaved(std::uint64_t repeat, RunFn run) {
    RunStats best_on = run(true);
    RunStats best_off = run(false);
    for (std::uint64_t i = 1; i < repeat; ++i) {
        RunStats on = run(true);
        if (on.wall_seconds < best_on.wall_seconds) best_on = on;
        RunStats off = run(false);
        if (off.wall_seconds < best_off.wall_seconds) best_off = off;
    }
    return {best_on, best_off};
}

void report(const std::string& name, const RunStats& on, const RunStats& off,
            const std::string& timestamp, std::vector<JsonMetric>& metrics) {
    Table table({"mode", "delivered", "wall s", "delivered/s", "sched/pkt"});
    table.row({"batched", fmt_int(on.delivered), fmt(on.wall_seconds, 3),
               fmt(on.delivered_pps(), 0), fmt(on.schedules_per_delivered(), 3)});
    table.row({"unbatched", fmt_int(off.delivered), fmt(off.wall_seconds, 3),
               fmt(off.delivered_pps(), 0), fmt(off.schedules_per_delivered(), 3)});
    note("");
    note("speedup (delivered pps): " + fmt(on.delivered_pps() / off.delivered_pps(), 2) +
         "x; heap schedules per delivered packet: " +
         fmt(on.schedules_per_delivered(), 3) + " vs " +
         fmt(off.schedules_per_delivered(), 3));
    // Both modes must drop the identical packet set (here: nothing -- queues
    // are unlimited).  The breakdown separates queue overflow from random
    // loss so a nonzero total is attributable at a glance.
    note("drops: batched queue=" + fmt_int(on.drops.queue) + " loss=" +
         fmt_int(on.drops.loss) + "; unbatched queue=" + fmt_int(off.drops.queue) +
         " loss=" + fmt_int(off.drops.loss));
    if (on.drops.total() != off.drops.total())
        note("WARNING: batched and unbatched drop totals differ");

    metrics.push_back({name, "delivered_pps_batched", on.delivered_pps(), timestamp});
    metrics.push_back({name, "delivered_pps_unbatched", off.delivered_pps(), timestamp});
    metrics.push_back({name, "events_scheduled_per_delivered_batched",
                       on.schedules_per_delivered(), timestamp});
    metrics.push_back({name, "events_scheduled_per_delivered_unbatched",
                       off.schedules_per_delivered(), timestamp});
    metrics.push_back(
        {name, "speedup", on.delivered_pps() / off.delivered_pps(), timestamp});
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_simcore.json";
    std::string timestamp = "unspecified";
    std::uint64_t bursts = 1;
    std::uint64_t burst_size = 24000;
    std::uint64_t groups = 8000;
    std::uint64_t rounds = 6;
    std::uint64_t repeat = 3;
    std::uint64_t tree_cache_cap = 0;  // 0 = unbounded
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::printf("missing value for %s\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--json") == 0) json_path = next("--json");
        else if (std::strcmp(argv[i], "--timestamp") == 0) timestamp = next("--timestamp");
        else if (std::strcmp(argv[i], "--bursts") == 0)
            bursts = static_cast<std::uint64_t>(std::atoll(next("--bursts")));
        else if (std::strcmp(argv[i], "--burst-size") == 0)
            burst_size = static_cast<std::uint64_t>(std::atoll(next("--burst-size")));
        else if (std::strcmp(argv[i], "--groups") == 0)
            groups = static_cast<std::uint64_t>(std::atoll(next("--groups")));
        else if (std::strcmp(argv[i], "--rounds") == 0)
            rounds = static_cast<std::uint64_t>(std::atoll(next("--rounds")));
        else if (std::strcmp(argv[i], "--repeat") == 0)
            repeat = static_cast<std::uint64_t>(std::atoll(next("--repeat")));
        else if (std::strcmp(argv[i], "--tree-cache-cap") == 0)
            tree_cache_cap =
                static_cast<std::uint64_t>(std::atoll(next("--tree-cache-cap")));
    }

    std::vector<JsonMetric> metrics;

    title("Burst batching: 20 sites x 50 receivers, " + fmt_int(bursts) + " bursts of " +
          fmt_int(burst_size));
    run_burst(true, 1, burst_size / 4 + 1);  // warm-up
    const auto [burst_on, burst_off] = best_of_interleaved(
        repeat, [&](bool b) { return run_burst(b, bursts, burst_size); });
    report("burst_20site", burst_on, burst_off, timestamp, metrics);

    title("Burst batching: " + fmt_int(groups) + " groups, one packet each, back-to-back");
    run_multi_group(true, groups / 4 + 1, 1, tree_cache_cap);  // warm-up
    const auto [mg_on, mg_off] = best_of_interleaved(repeat, [&](bool b) {
        return run_multi_group(b, groups, rounds, tree_cache_cap);
    });
    report("multi_group", mg_on, mg_off, timestamp, metrics);

    // Tree-construction cost breakdown (the 10k-group workloads this PR
    // targets used to be dominated by tree builds; track the fraction).
    const double tree_fraction =
        mg_on.wall_seconds > 0.0 ? mg_on.tree_build_seconds / mg_on.wall_seconds : 0.0;
    note("");
    note("tree builds: " + fmt_int(mg_on.tree_builds) + " in " +
         fmt(mg_on.tree_build_seconds, 3) + " s (" + fmt(100.0 * tree_fraction, 1) +
         "% of wall); tree cache: " +
         fmt(static_cast<double>(mg_on.tree_cache_bytes) / (1024.0 * 1024.0), 2) +
         " MiB" + (tree_cache_cap != 0 ? " (cap " + fmt_int(tree_cache_cap) + ")" : ""));
    metrics.push_back({"multi_group", "tree_builds",
                       static_cast<double>(mg_on.tree_builds), timestamp});
    metrics.push_back(
        {"multi_group", "tree_build_wall_fraction", tree_fraction, timestamp});
    metrics.push_back({"multi_group", "tree_cache_bytes",
                       static_cast<double>(mg_on.tree_cache_bytes), timestamp});

    write_bench_json(json_path, metrics);
    note("");
    note("JSON written to " + json_path);
    for (const auto& m : metrics) note(json_metric_line(m));
    return 0;
}
