// Table 3: logging-server response time and maximum service rate.
//
// The paper measured, on a 1995 IBM RS/6000-370 with 10 Mb/s Ethernet:
//   Server request processing      102 us
//   Ethernet transmission          390 us
//   Interrupts/context switch etc 1090 us
//   Total (128-byte log RPC)      1582 us
//   Max service rate              ~1587 requests/s (630 us/request)
//
// On modern hardware the absolute numbers shrink by orders of magnitude;
// the *shape* to reproduce is that protocol processing is a small fraction
// of the end-to-end RPC (network + kernel dominate), and that a logging
// server sustains far more requests than a site will ever generate.
//
// Benchmarks:
//   BM_ServerRequestProcessing -- LoggerCore handling one NACK, pure core
//     (the "Server Request Processing" row).
//   BM_LogIngest               -- cost of logging one packet off the stream.
//   BM_EncodeDecode            -- wire codec cost for the 128-byte packet.
//   BM_UdpLogRpc               -- full user-space RPC over loopback UDP:
//     NACK out, retransmission back (the "Total" row).
#include <benchmark/benchmark.h>

#include <array>

#include "core/logger.hpp"
#include "transport/udp_socket.hpp"

namespace {

using namespace lbrm;

constexpr NodeId kSource{1};
constexpr NodeId kLogger{2};
constexpr NodeId kClient{3};
constexpr GroupId kGroup{1};

LoggerCore make_loaded_logger(std::uint32_t packets) {
    LoggerConfig config;
    config.self = kLogger;
    config.group = kGroup;
    config.source = kSource;
    config.role = LoggerRole::kPrimary;
    // The benches drive the core without a timer service, so the NACK
    // counting window never expires; keep service strictly unicast.
    config.remulticast_request_threshold = 0xFFFFFFFFu;
    LoggerCore logger{config, 1};

    std::vector<std::uint8_t> payload(128, 0xAB);
    for (std::uint32_t s = 1; s <= packets; ++s) {
        Packet store{Header{kGroup, kSource, kSource},
                     LogStoreBody{SeqNum{s}, EpochId{0}, payload}};
        logger.on_packet(time_zero(), store);
    }
    return logger;
}

void BM_ServerRequestProcessing(benchmark::State& state) {
    LoggerCore logger = make_loaded_logger(1024);
    const Packet nack{Header{kGroup, kSource, kClient}, NackBody{{SeqNum{512}}}};
    TimePoint now = time_zero() + secs(1.0);
    for (auto _ : state) {
        auto actions = logger.on_packet(now, nack);
        benchmark::DoNotOptimize(actions);
        now += micros(10);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerRequestProcessing);

void BM_LogIngest(benchmark::State& state) {
    LoggerConfig config;
    config.self = kLogger;
    config.group = kGroup;
    config.source = kSource;
    config.role = LoggerRole::kSecondary;
    config.retention.max_entries = 4096;
    LoggerCore logger{config, 1};

    std::vector<std::uint8_t> payload(128, 0xCD);
    std::uint32_t seq = 1;
    TimePoint now = time_zero();
    for (auto _ : state) {
        Packet data{Header{kGroup, kSource, kSource},
                    DataBody{SeqNum{seq++}, EpochId{0}, payload}};
        auto actions = logger.on_packet(now, data);
        benchmark::DoNotOptimize(actions);
        now += micros(10);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogIngest);

void BM_EncodeDecode(benchmark::State& state) {
    Packet packet{Header{kGroup, kSource, kLogger},
                  RetransmissionBody{SeqNum{7}, EpochId{0}, false,
                                     std::vector<std::uint8_t>(128, 0xEF)}};
    for (auto _ : state) {
        auto wire = encode(packet);
        auto decoded = decode(wire);
        benchmark::DoNotOptimize(decoded);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeDecode);

/// Full log-retrieval RPC over real loopback sockets: client sends a NACK,
/// a (synchronous, in-process) server runs the LoggerCore and answers with
/// the retransmission; client receives and decodes it.  This is the Table 3
/// "Total" measurement on today's stack.
void BM_UdpLogRpc(benchmark::State& state) {
    using transport::SockAddr;
    using transport::UdpSocket;

    UdpSocket server = UdpSocket::bind(SockAddr::loopback(0));
    UdpSocket client = UdpSocket::bind(SockAddr::loopback(0));
    const SockAddr server_addr = server.local_addr();
    const SockAddr client_addr = client.local_addr();

    LoggerCore logger = make_loaded_logger(1024);

    std::array<std::uint8_t, 2048> buffer;
    std::uint32_t next = 1;
    for (auto _ : state) {
        // Rotate through the log so each request is a distinct packet (a
        // repeated seq would legitimately trigger the logger's re-multicast
        // absorption and stop answering unicast).
        const SeqNum seq{(next++ % 1024) + 1};
        const Packet nack{Header{kGroup, kSource, kClient}, NackBody{{seq}}};
        while (!client.send_to(server_addr, encode(nack))) {
        }

        // Server side: busy-poll (the benchmark measures latency, and the
        // paper's saturated server also never context-switched).
        std::optional<UdpSocket::Datagram> request;
        while (!request) request = server.recv_into(buffer);
        auto decoded = decode(std::span(buffer.data(), request->size));
        auto actions = logger.on_packet(time_zero(), *decoded);
        for (const auto& action : actions) {
            const std::vector<std::uint8_t>* wire = nullptr;
            std::vector<std::uint8_t> encoded;
            if (const auto* u = std::get_if<SendUnicast>(&action)) {
                encoded = encode(u->packet);
                wire = &encoded;
            } else if (const auto* m = std::get_if<SendMulticast>(&action)) {
                encoded = encode(m->packet);
                wire = &encoded;
            }
            if (wire != nullptr)
                while (!server.send_to(client_addr, *wire)) {
                }
        }

        std::optional<UdpSocket::Datagram> reply;
        while (!reply) reply = client.recv_into(buffer);
        auto repair = decode(std::span(buffer.data(), reply->size));
        benchmark::DoNotOptimize(repair);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("128B log retrieval RPC over loopback UDP");
}
BENCHMARK(BM_UdpLogRpc);

}  // namespace

int main(int argc, char** argv) {
    std::printf("=== Table 3: logging server response time & service rate ===\n");
    std::printf("Paper (1995 RS/6000-370 + 10 Mb/s Ethernet + AIX):\n");
    std::printf("  server request processing 102 us; Ethernet 390 us;\n");
    std::printf("  interrupts/ctx-switch 1090 us; TOTAL 1582 us;\n");
    std::printf("  max service rate ~1587 req/s.\n");
    std::printf("Shape preserved here: core processing << end-to-end RPC;\n");
    std::printf("items_per_second of BM_UdpLogRpc is today's 'max service rate'.\n\n");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}
